"""Fault tolerance: heartbeat ring, failure injection, task restart.

§3.1: "each node in OMPC (head node and worker nodes) has a heart-beat
mechanism, connected in a ring topology, which allows nodes to monitor
their neighbors.  Thus, if a node fails, the system detects and
restarts the failed tasks.  Fault tolerance work on OMPC is underway
and will be released in a future version."

This module implements that future version on the simulated cluster:

* :class:`HeartbeatRing` — every node periodically sends a heartbeat to
  its ring successor and monitors its predecessor.  Because the fabric
  may drop or delay messages (see :mod:`repro.core.faultmodel`), a
  missed deadline no longer proves death: the monitor *suspects* a
  predecessor only after ``suspect_windows`` consecutive missed
  windows, reports the suspect to the head node, and the head confirms
  with a direct ping before declaring the node dead.  False positives
  (alive nodes declared dead) and cleared suspicions are counted.
* :class:`FailureInjector` — crashes chosen worker nodes at chosen
  simulated times (kills their event machinery and wipes their device
  memory).
* :class:`FaultTolerantRuntime` — an OMPC runtime whose dispatch
  survives worker failures: in-flight tasks on a dead node are
  re-dispatched to survivors, and buffers whose only copy died are
  recovered by lineage — re-executing their recorded producer task
  (transitively) — or, when periodic checkpointing is enabled
  (``OMPCConfig.checkpoint_interval``), from head-side snapshots, which
  also rescues in-place/INOUT producers that checkpoint-free lineage
  cannot rebuild.  Straggler mitigation
  (``OMPCConfig.straggler_factor``) speculatively re-dispatches a
  too-slow target task to a second node and keeps whichever attempt
  finishes first.  An unrecoverable loss raises :class:`RecoveryError`.

**The head node may fail too.**  With ``OMPCConfig.head_standbys > 0``
the head streams its commit log (task completions, directory updates,
checkpoint snapshots, dispatch intents) to standby workers through
:mod:`repro.core.headlog`.  When the ring confirms the head dead — a
quorum of its two ring neighbors, never a self-confirmation through
the dead head itself — the reporter coordinates an election among the
standbys, the most-caught-up replica wins deterministically, and the
new head rebuilds the data-manager directory, completed-task set, and
checkpoint store by replaying its replica.  Unacknowledged dispatches
are re-issued idempotently (workers dedup by task id and fence
old-epoch zombies), the checkpointer and heartbeat ring re-root at the
new head, and the program finishes bit-identical to a fault-free run.
A head crash with no live standby raises :class:`RecoveryError`
instead of hanging.

Transient faults (message loss, degraded links, stalls, hangs) are
injected by passing a :class:`~repro.core.faultmodel.FaultPlan` to
:meth:`FaultTolerantRuntime.run`; a lossy plan automatically enables the
reliable MPI transport (:class:`~repro.mpi.comm.TransportConfig`) so
loss costs simulated time rather than correctness.
"""

from __future__ import annotations

import copy as _copy
import itertools

import numpy as np
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.findings import AnalysisReport
from repro.analysis.hooks import Analysis
from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager, Move
from repro.core.events import EventSystem
from repro.core.faultmodel import FaultPlan
from repro.core.headlog import HeadLog, Replicator
from repro.core.memory import DeviceMemoryError
from repro.core.scheduler import HeftScheduler, Schedule, Scheduler
from repro.core.tiering import MemoryWait, make_policy
from repro.mpi.comm import MpiWorld, TransportConfig
from repro.obs.observer import Observer
from repro.omp.api import OmpProgram
from repro.omp.task import Buffer, Task, TaskKind
from repro.sim.errors import Interrupt, SimulationError
from repro.sim.primitives import AnyOf
from repro.sim.resources import Resource
from repro.util.units import MILLISECOND

#: Ring-communicator tags: heartbeats, suspect reports to the head.
HB_TAG = 1
SUSPECT_TAG = 2
#: Ping-communicator tags: pings carry the tag their pong must use;
#: VERIFY asks a third node to ping a suspect (head-death quorum).
PING_TAG = 1
VERIFY_TAG = 2
_PONG_TAG_BASE = 16


class RecoveryError(SimulationError):
    """A lost buffer cannot be reconstructed from surviving data."""


class ClusterExhausted(RecoveryError):
    """Permanent failures left no workers to run on.

    Raised instead of a generic :class:`RecoveryError` when execution
    itself is impossible — every worker of the (sub)cluster has been
    declared dead — so a workload manager can distinguish "this
    partition is gone" (fail/requeue the one job, keep serving other
    tenants) from "this buffer is unrecoverable".
    """


@dataclass(frozen=True)
class NodeFailure:
    """One injected crash."""

    time: float
    node: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.node < 0:
            raise ValueError("node must be >= 0")


class FailureInjector:
    """Schedules crashes against a running event system.

    Any node may be crashed, including the head (node 0) — recovering
    from that requires standbys (``OMPCConfig.head_standbys``).  A node
    can only be crashed once: arming a second failure for the same node
    is rejected (fail-stop nodes do not die twice).
    """

    def __init__(self, events: EventSystem):
        self.events = events
        self.injected: list[NodeFailure] = []
        self._armed: set[int] = set()

    def arm(self, failures: Sequence[NodeFailure],
            on_fail: Callable[[int], None] | None = None) -> None:
        sim = self.events.sim
        for failure in tuple(failures):
            if failure.node in self._armed:
                raise ValueError(
                    f"node {failure.node} already has an armed failure; "
                    "duplicate/overlapping injections would crash a "
                    "fail-stop node twice"
                )
            self._armed.add(failure.node)

            def crash(f=failure):
                yield sim.timeout(f.time)
                if self.events.node_failed(f.node):
                    return  # already dead (e.g. STONITH'd deposed head)
                self.events.fail_node(f.node)
                self.injected.append(f)
                if on_fail is not None:
                    on_fail(f.node)

            sim.process(crash(), name=f"failure@{failure.node}")


class _TimerWheel:
    """Interns same-instant timeout events (batched heartbeat timers).

    Every ring sender sleeps ``interval`` from the same instant, and
    co-started monitors arm identical deadlines: the reference kernel
    schedules one timer event *per process per tick*, so an n-node ring
    pays O(n) timer events every heartbeat window — the dominant event
    source in long steady-state runs.  The wheel keys timers by their
    absolute firing time and hands every waiter of one instant the
    *same* event, collapsing that to O(1) timer events per tick.

    Timing is preserved exactly: ``after(d)`` fires at ``now + d``,
    the same instant a private ``sim.timeout(d)`` would fire (the key
    *is* the firing time, so sharing never changes when anyone wakes).
    What changes is the event *stream* — fewer timer events, and
    co-scheduled waiters wake through one shared event rather than n
    consecutive private ones — so the wheel is not part of the
    digest-checked fast path; it is asserted by FT *result* equality
    (wheel on vs off) instead, and can be disabled per ring with
    ``use_wheel=False``.
    """

    __slots__ = ("sim", "_slots", "created", "interned")

    def __init__(self, sim):
        self.sim = sim
        #: Absolute fire time → the shared pending timer for that instant.
        self._slots: dict[float, Any] = {}
        #: Diagnostics: timers actually scheduled vs. waits absorbed by
        #: an existing timer (the tests assert interning happens).
        self.created = 0
        self.interned = 0

    def after(self, delay: float):
        """An event firing ``delay`` seconds from now, shared with every
        other waiter whose wait ends at the same instant."""
        when = self.sim.now + delay
        ev = self._slots.get(when)
        if ev is not None and not ev._processed:
            self.interned += 1
            return ev
        if len(self._slots) >= 64:
            # Drop fired instants so the table tracks live timers only.
            self._slots = {
                t: e for t, e in self._slots.items() if not e._processed
            }
        ev = self.sim.timeout(delay)
        self._slots[when] = ev
        self.created += 1
        return ev


class HeartbeatRing:
    """Ring-topology liveness monitoring (§3.1), loss-hardened.

    Node ``i`` heartbeats to ``(i+1) % n`` every ``interval``; the
    monitor on the successor counts consecutive ``timeout`` windows
    without a beat.  After ``suspect_windows`` misses the monitor
    reports the suspect to the head node, which pings the suspect
    directly and declares it dead only if no pong arrives within
    ``ping_timeout`` — so a node behind a lossy or degraded link is
    cleared rather than killed.  After a detection the monitor re-wires
    to the next living predecessor so later failures are still caught.

    **Suspecting the head itself** cannot route through the head: the
    confirm step would be a self-confirmation loop through the very
    node under suspicion.  Instead the suspecting monitor (the head's
    ring successor) pings the head directly and, if it stays silent,
    asks the head's *other* live ring neighbor for a second opinion
    (:data:`VERIFY_TAG`).  Only when both neighbors fail to reach the
    head — a quorum of its ring neighborhood — is the head declared
    dead, firing :attr:`on_head_detect` so the runtime can elect a
    standby and :meth:`rebase` the ring's confirm machinery there.

    Heartbeats and suspect reports travel as datagrams (the ring
    communicator opts out of reliable transport — retransmitting a
    heartbeat would defeat its purpose); pings use a separate
    communicator that inherits the world's transport.

    Health counters (missed windows, suspect reports, cleared
    suspicions, false positives, detections) are mirrored to the
    cluster's :mod:`repro.obs` observer under ``hb.*`` so failover runs
    are debuggable from a trace.
    """

    def __init__(
        self,
        cluster: Cluster,
        mpi: MpiWorld,
        events: EventSystem,
        interval: float = 1.0 * MILLISECOND,
        timeout: float = 3.5 * MILLISECOND,
        heartbeat_bytes: float = 16.0,
        suspect_windows: int = 2,
        ping_timeout: float = 1.0 * MILLISECOND,
        use_wheel: bool = True,
    ):
        if interval <= 0 or timeout <= interval:
            raise ValueError("need 0 < interval < timeout")
        if suspect_windows < 1:
            raise ValueError("suspect_windows must be >= 1")
        if ping_timeout <= 0:
            raise ValueError("ping_timeout must be > 0")
        self.cluster = cluster
        self.sim = cluster.sim
        self.events = events
        self.interval = interval
        self.timeout = timeout
        self.heartbeat_bytes = heartbeat_bytes
        self.suspect_windows = suspect_windows
        self.ping_timeout = ping_timeout
        self.head = 0
        self.comm = mpi.new_communicator(reliable=False, service=True)
        self.ping_comm = mpi.new_communicator(service=True)
        self.on_detect: Callable[[int, int], None] | None = None
        #: Called instead of :attr:`on_detect` when the declared node is
        #: the *current head* — the failover trigger.
        self.on_head_detect: Callable[[int, int], None] | None = None
        #: Observability sink for ``hb.*`` health counters.
        self.obs = cluster.obs
        #: (dead_node, detected_by, detection_time) records.
        self.detections: list[tuple[int, int, float]] = []
        #: Suspects that answered the head's ping (kept alive).
        self.suspicions_cleared = 0
        #: Nodes declared dead that had not actually failed.
        self.false_positives = 0
        #: Heartbeat windows that elapsed without a beat (raw misses,
        #: before the suspect threshold).
        self.missed_windows = 0
        self._dead: set[int] = set()
        self._confirming: set[int] = set()
        self._pong_seq = itertools.count()
        self._stopped = False
        #: Ring-neighbor scan cursors.  Dead/failed nodes never come
        #: back, so each node's live successor/predecessor only ever
        #: advances — resuming the skip scan from the last answer makes
        #: the per-window neighbor lookup O(1) amortized instead of
        #: O(dead) per window.
        self._succ_cache: dict[int, int] = {}
        self._pred_cache: dict[int, int] = {}
        #: Per-source suspect-report window: one wheel-interned timer
        #: event per reporter.  While a reporter's previous report is
        #: still inside its window the new one is suppressed, so a mass
        #: failure costs the head one report per *source* per window
        #: instead of an unbounded fan-in on SUSPECT_TAG.
        self._report_gate: dict[int, object] = {}
        #: Batched timers for the periodic sender/monitor waits; pings
        #: and verdicts keep private timers (they are rare and their
        #: deadlines are almost never aligned).
        self.wheel = _TimerWheel(self.sim) if use_wheel else None
        self._after = self.wheel.after if use_wheel else self.sim.timeout

    def start(self) -> None:
        n = self.cluster.num_nodes
        if n < 2:
            return
        for node in range(n):
            self.sim.process(self._sender(node), name=f"hb-send{node}")
            self.sim.process(self._monitor(node), name=f"hb-mon{node}")
            self.sim.process(self._responder(node), name=f"hb-pong{node}")
            self.sim.process(self._verifier(node), name=f"hb-verify{node}")
        self.sim.process(
            self._confirm_service(self.head), name=f"hb-confirm{self.head}"
        )

    def rebase(self, new_head: int) -> None:
        """Re-root the confirm machinery at an elected head (failover)."""
        self.head = new_head
        if not self._stopped:
            self.sim.process(
                self._confirm_service(new_head), name=f"hb-confirm{new_head}"
            )

    def stop(self) -> None:
        """End monitoring (called at runtime shutdown)."""
        self._stopped = True

    def _alive(self, node: int) -> bool:
        return not self.events.node_failed(node) and node not in self._dead

    def _sender(self, node: int):
        n = self.cluster.num_nodes
        rank = self.comm.rank(node)
        seq = 0
        while not self._stopped:
            if self.events.node_failed(node):
                return  # this node has crashed; no more beats
            # Skip dead successors so the ring stays closed.  The scan
            # resumes from the previous window's successor: failures are
            # permanent, so the first live successor only moves forward
            # and the cursor makes this O(1) amortized.
            successor = self._succ_cache.get(node, (node + 1) % n)
            while not self._alive(successor) and successor != node:
                successor = (successor + 1) % n
            self._succ_cache[node] = successor
            if successor != node:
                rank.isend(successor, ("hb", node, seq),
                           self.heartbeat_bytes, tag=HB_TAG)
            seq += 1
            yield self._after(self.interval)

    def _monitor(self, node: int):
        rank = self.comm.rank(node)
        watched_prev: int | None = None
        misses = 0
        while not self._stopped:
            if self.events.node_failed(node):
                return
            watched = self._predecessor(node)
            if watched is None:
                return  # no other live node to monitor
            if watched != watched_prev:
                watched_prev = watched
                misses = 0
            req = rank.irecv(src=watched, tag=HB_TAG)
            deadline = self._after(self.timeout)
            yield AnyOf(self.sim, [req.event, deadline])
            if self._stopped or self.events.node_failed(node):
                # Withdraw the pending receive on the way out: a monitor
                # that stops watching must not leave a matching slot
                # behind to swallow a late beat.
                req.cancel()
                return
            if req.test():
                misses = 0
                continue  # a beat arrived in time
            # Withdraw the unmatched receive before the next window so a
            # late beat from a slow-but-alive predecessor can never be
            # swallowed by a request nobody is watching anymore.
            req.cancel()
            misses += 1
            self.missed_windows += 1
            self.obs.count("hb.missed_windows")
            if misses < self.suspect_windows:
                continue
            misses = 0
            if watched in self._dead or watched in self._confirming:
                continue
            self.obs.count("hb.suspect_reports")
            if watched == self.head:
                # Suspecting the head cannot route through the head:
                # confirm locally with a neighbor quorum instead.
                self._confirming.add(watched)
                self.sim.process(
                    self._confirm_head(watched, node),
                    name=f"hb-headping{watched}",
                )
                continue
            # Suspect: the fabric may merely have dropped or delayed the
            # beats, so ask the head to confirm with a direct ping — at
            # most one report per window from this source (the gate
            # timer is wheel-interned, so it is usually the very same
            # event as a monitor deadline).
            gate = self._report_gate.get(node)
            if gate is not None and not gate._processed:
                self.obs.count("hb.reports_suppressed")
                continue
            self._report_gate[node] = self._after(self.timeout)
            rank.isend(self.head, ("suspect", watched, node),
                       self.heartbeat_bytes, tag=SUSPECT_TAG)

    def _confirm_service(self, service_head: int):
        """Head-side loop turning suspect reports into ping confirms.

        One instance runs per head incarnation; a deposed or crashed
        instance drains away on its next wakeup.
        """
        rank = self.comm.rank(service_head)
        while not self._stopped:
            msg = yield from rank.recv(tag=SUSPECT_TAG)
            if self._stopped:
                return
            if self.head != service_head or self.events.node_failed(
                service_head
            ):
                return  # deposed by a failover (or died): stand down
            _kind, suspect, reporter = msg.payload
            if suspect in self._dead or suspect in self._confirming:
                continue
            self._confirming.add(suspect)
            self.sim.process(
                self._confirm(suspect, reporter), name=f"hb-ping{suspect}"
            )

    def _ping(self, pinger: int, target: int):
        """Generator: ping ``target`` from ``pinger``.

        Returns True when the target stayed *silent* past
        ``ping_timeout`` (no pong), False when it answered.
        """
        reply_tag = _PONG_TAG_BASE + next(self._pong_seq)
        rank = self.ping_comm.rank(pinger)
        pong = rank.irecv(src=target, tag=reply_tag)
        rank.isend(target, reply_tag, self.heartbeat_bytes, tag=PING_TAG)
        yield AnyOf(self.sim, [pong.event, self.sim.timeout(self.ping_timeout)])
        if pong.test():
            return False
        pong.cancel()
        return True

    def _confirm(self, suspect: int, reporter: int):
        """Ping ``suspect`` from the head; declare dead only on silence."""
        silent = yield from self._ping(self.head, suspect)
        self._confirming.discard(suspect)
        if not silent:
            self.suspicions_cleared += 1
            self.obs.count("hb.suspicions_cleared")
            return  # alive after all — the window misses were transient
        if not self.events.node_failed(suspect):
            self.false_positives += 1
            self.obs.count("hb.false_positives")
        self._declare(suspect, reporter)

    def _confirm_head(self, suspect: int, reporter: int):
        """Confirm a *head* suspicion via its ring-neighbor quorum.

        The reporter (the head's ring successor, whose monitor raised
        the suspicion) pings the head itself; if silent, it asks the
        head's other live ring neighbor to ping too.  Both neighbors
        silent — or the witness itself unreachable, leaving no one able
        to prove the head alive — escalates to a declaration, which the
        runtime turns into an election.
        """
        try:
            silent = yield from self._ping(reporter, suspect)
            if self._stopped or suspect != self.head or suspect in self._dead:
                return
            if not silent:
                self.suspicions_cleared += 1
                self.obs.count("hb.suspicions_cleared")
                return
            witness = self._other_neighbor(suspect, reporter)
            if witness is not None:
                verdict = yield from self._second_opinion(
                    witness, suspect, reporter
                )
                if (
                    self._stopped
                    or suspect != self.head
                    or suspect in self._dead
                ):
                    return
                if verdict is False:
                    # The witness reached the head: the reporter's link
                    # was the problem, not the head.
                    self.suspicions_cleared += 1
                    self.obs.count("hb.suspicions_cleared")
                    return
            if not self.events.node_failed(suspect):
                self.false_positives += 1
                self.obs.count("hb.false_positives")
            self._declare(suspect, reporter)
        finally:
            self._confirming.discard(suspect)

    def _second_opinion(self, witness: int, target: int, requester: int):
        """Generator: ask ``witness`` to ping ``target`` on our behalf.

        Returns True when the witness found the target silent, False
        when the witness reached it, and None when the witness itself
        never answered — the caller treats None as assent, since
        neither neighbor can then prove the head alive.
        """
        reply_tag = _PONG_TAG_BASE + next(self._pong_seq)
        rank = self.ping_comm.rank(requester)
        verdict = rank.irecv(src=witness, tag=reply_tag)
        rank.isend(witness, ("verify", target, reply_tag),
                   self.heartbeat_bytes, tag=VERIFY_TAG)
        budget = 3.0 * self.ping_timeout  # witness ping + both legs' slack
        yield AnyOf(self.sim, [verdict.event, self.sim.timeout(budget)])
        if verdict.test():
            return bool(verdict.event.value.payload[1])
        verdict.cancel()
        return None

    def _verifier(self, node: int):
        """Answer verify requests: ping the named target, report back."""
        rank = self.ping_comm.rank(node)
        while not self._stopped:
            msg = yield from rank.recv(tag=VERIFY_TAG)
            if self._stopped:
                return
            if self.events.node_failed(node):
                return  # a dead node verifies nothing
            _kind, target, reply_tag = msg.payload
            silent = yield from self._ping(node, target)
            if self.events.node_failed(node):
                return
            rank.isend(msg.src, ("verdict", silent), self.heartbeat_bytes,
                       tag=reply_tag)

    def _responder(self, node: int):
        """Answer head pings (the liveness proof of the confirm step)."""
        rank = self.ping_comm.rank(node)
        while not self._stopped:
            msg = yield from rank.recv(tag=PING_TAG)
            if self._stopped:
                return
            if self.events.node_failed(node):
                return  # a dead node answers nothing
            rank.isend(msg.src, ("pong", node), self.heartbeat_bytes,
                       tag=msg.payload)

    def _predecessor(self, node: int) -> int | None:
        """The nearest ring predecessor this node *believes* is alive.

        Declarations are permanent, so the answer only ever moves
        further back around the ring; the scan resumes from the cached
        previous answer — O(1) amortized across the whole run instead
        of O(dead) per heartbeat window.
        """
        n = self.cluster.num_nodes
        pred = self._pred_cache.get(node, (node - 1) % n)
        while pred != node:
            if pred not in self._dead:
                self._pred_cache[node] = pred
                return pred
            pred = (pred - 1) % n
        return None

    def _other_neighbor(self, around: int, excluding: int) -> int | None:
        """The nearest live ring predecessor of ``around`` that is not
        ``excluding`` — the second member of the head-death quorum."""
        n = self.cluster.num_nodes
        pred = (around - 1) % n
        while pred != around:
            if pred != excluding and self._alive(pred):
                return pred
            pred = (pred - 1) % n
        return None

    def _declare(self, dead: int, by: int) -> None:
        if dead in self._dead:
            return
        self._dead.add(dead)
        self.detections.append((dead, by, self.sim.now))
        self.obs.count("hb.detections")
        if dead == self.head and self.on_head_detect is not None:
            self.on_head_detect(dead, by)
        elif self.on_detect is not None:
            self.on_detect(dead, by)


@dataclass(frozen=True)
class FailoverEvent:
    """Telemetry for one head failover (detection → election → resume)."""

    epoch: int
    old_head: int
    new_head: int
    failed_at: float
    declared_at: float
    elected_at: float
    resumed_at: float
    replayed_records: int
    redispatched_tasks: int

    @property
    def detection_time(self) -> float:
        """Crash (or STONITH of a falsely declared head) → ring quorum
        declaration."""
        return self.declared_at - self.failed_at

    @property
    def election_time(self) -> float:
        """Declaration → elected winner known."""
        return self.elected_at - self.declared_at

    @property
    def recovery_time(self) -> float:
        """Declaration → new head resumed dispatching (includes the
        announcement round and the log-replay rebuild)."""
        return self.resumed_at - self.declared_at


@dataclass
class FTRunResult:
    """Outcome of a fault-tolerant execution."""

    makespan: float
    schedule: Schedule
    failures: list[int] = field(default_factory=list)
    detections: list[tuple[int, int, float]] = field(default_factory=list)
    reexecuted_tasks: int = 0
    task_attempts: dict[int, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    #: Suspect→confirm outcomes: suspicions the head's ping cleared, and
    #: detection errors against ground truth (a false positive is an
    #: alive node declared dead; a false negative is a crashed node the
    #: ring never declared).
    suspicions_cleared: int = 0
    false_positive_detections: int = 0
    false_negative_detections: int = 0
    #: Checkpoint activity (0 unless ``checkpoint_interval`` > 0).
    checkpoints_taken: int = 0
    checkpoint_restores: int = 0
    #: Straggler mitigation: backup dispatches issued / races they won.
    speculative_attempts: int = 0
    speculation_wins: int = 0
    #: Reliable-transport counters (drops, retransmissions, acks,
    #: duplicates) — empty dict when the fabric is clean.
    transport: dict[str, int] = field(default_factory=dict)
    #: Head-failover telemetry (zero/empty when the head survived or
    #: replication was off).
    head_failovers: int = 0
    failovers: list[FailoverEvent] = field(default_factory=list)
    #: The node serving as head when the run finished (0 = no failover).
    final_head: int = 0
    #: Commit-log / replication activity (``head_standbys > 0`` only).
    log_records_appended: int = 0
    replication_bytes: float = 0.0
    log_flushes: int = 0
    replication: dict[str, float] = field(default_factory=dict)
    #: Raw heartbeat windows that elapsed without a beat (ring health).
    missed_heartbeat_windows: int = 0
    #: The run's :class:`~repro.obs.observer.Observer` when the config
    #: enabled tracing (``OMPCConfig.trace``); ``None`` otherwise.
    obs: Observer | None = None
    #: Correctness findings when the config enabled analysis
    #: (``OMPCConfig.analysis``); ``None`` otherwise.
    analysis: AnalysisReport | None = None


class FaultTolerantRuntime:
    """OMPC with the §3.1 heartbeat/restart mechanism enabled."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        config: OMPCConfig | None = None,
        scheduler: Scheduler | None = None,
        heartbeat_interval: float = 1.0 * MILLISECOND,
        heartbeat_timeout: float = 3.5 * MILLISECOND,
        transport: TransportConfig | None = None,
        heartbeat_wheel: bool = True,
    ):
        if cluster_spec.num_nodes < 3:
            raise ValueError(
                "fault tolerance needs a head node plus at least two "
                "workers (a lone worker's failure is unrecoverable)"
            )
        self.cluster_spec = cluster_spec
        self.config = config or OMPCConfig()
        if self.config.head_shards > 1:
            raise ValueError(
                "FaultTolerantRuntime drives a single head; sharded "
                "runs (head_shards > 1) go through OMPCRuntime, which "
                "delegates to repro.core.shard.ShardedRuntime"
            )
        self.scheduler = scheduler or HeftScheduler(
            exec_slots_per_node=self.config.event_handlers
        )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_wheel = heartbeat_wheel
        #: Explicit transport override; by default the reliable transport
        #: switches on exactly when the fault plan is lossy.
        self.transport = transport
        self.last_cluster: Cluster | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        program: OmpProgram,
        failures: Sequence[NodeFailure] = (),
        fault_plan: FaultPlan | None = None,
    ) -> FTRunResult:
        """Execute ``program`` on a fresh cluster and drive the clock."""
        main_proc, finish = self.launch(
            program, failures=failures, fault_plan=fault_plan
        )
        main_proc.sim.run(until=main_proc)
        return finish()

    def launch(
        self,
        program: OmpProgram,
        failures: Sequence[NodeFailure] = (),
        fault_plan: FaultPlan | None = None,
        cluster=None,
    ):
        """Set up one execution and return ``(main_process, finish)``.

        Mirrors :meth:`OMPCRuntime.launch`: with ``cluster=None`` a
        private machine is built and the caller drives the clock via
        ``run``; with an externally-owned cluster (in practice a
        :class:`~repro.cluster.partition.ClusterView`) the execution
        joins an already-ticking simulation.  Failure times stay
        relative to runtime startup either way (the injector arms after
        startup completes).  A ``fault_plan`` cannot be combined with an
        external cluster — plans install on the physical machine, which
        the partition's owner must do before carving views.
        """
        program.validate()
        failures = tuple(failures)
        if cluster is None:
            cluster = Cluster(self.cluster_spec)
        else:
            if cluster.num_nodes != self.cluster_spec.num_nodes:
                raise ValueError(
                    f"cluster has {cluster.num_nodes} nodes, spec expects "
                    f"{self.cluster_spec.num_nodes}"
                )
            if fault_plan is not None:
                raise ValueError(
                    "fault_plan must be installed on the physical cluster, "
                    "not passed to a launch on a shared cluster view"
                )
        self.last_cluster = cluster
        sim = cluster.sim
        t0 = sim.now
        if self.config.trace and not cluster.obs.enabled:
            # Must precede MpiWorld/EventSystem construction — both
            # capture ``cluster.obs`` when built.
            cluster.install_observer(Observer(sim))
        if self.config.analysis and not cluster.analysis.enabled:
            # Likewise captured at construction time by MpiWorld and the
            # event system.
            cluster.install_analysis(Analysis())
        analysis = cluster.analysis
        active = fault_plan.install(cluster) if fault_plan is not None else None
        transport = self.transport
        ambient = active if active is not None else cluster.faults
        if transport is None and ambient is not None and ambient.plan.lossy:
            transport = TransportConfig()
        mpi = MpiWorld(cluster, transport=transport)
        events = EventSystem(cluster, mpi, self.config)
        cfg = self.config
        if cfg.gossip:
            # SWIM-style gossip membership (repro.core.gossip): O(1)
            # probes per node per round instead of the ring's O(N)
            # suspect-report fan-in at the head.  Feeds the exact same
            # suspect -> head-confirm pipeline via on_detect /
            # on_head_detect, so failover below is unchanged.
            from repro.core.gossip import GossipMembership

            ring = GossipMembership(
                cluster, mpi, events,
                interval=cfg.gossip_interval,
                ping_timeout=cfg.heartbeat_ping_timeout,
                fanout=cfg.gossip_fanout,
                piggyback=cfg.gossip_piggyback,
                seed=cfg.gossip_seed,
                use_wheel=self.heartbeat_wheel,
            )
        else:
            ring = HeartbeatRing(
                cluster, mpi, events,
                interval=self.heartbeat_interval,
                timeout=self.heartbeat_timeout,
                suspect_windows=cfg.heartbeat_suspect_windows,
                ping_timeout=cfg.heartbeat_ping_timeout,
                use_wheel=self.heartbeat_wheel,
            )
        dm = DataManager(analysis=analysis if analysis.enabled else None)
        if cfg.device_memory_bytes > 0 and cfg.eviction_policy != "none":
            # Tiered data plane (repro.core.tiering) under fault
            # tolerance: same capacity mirror as the plain runtime, with
            # MemoryPressure windows shrinking the effective budget.
            run_faults = getattr(cluster, "faults", None)

            def capacity_fn(node, base, _f=run_faults):
                factor_of = getattr(_f, "capacity_factor", None)
                if factor_of is None:
                    return base
                return base * factor_of(node, sim.now)

            dm.configure_tiering(
                {n: cfg.device_memory_bytes
                 for n in range(1, cluster.num_nodes)},
                make_policy(cfg.eviction_policy),
                capacity_fn=capacity_fn,
            )
        tiering = dm.tiering
        analysis.program_begin(program)
        graph = program.graph

        # -- head-state replication (head failover) ----------------------
        # Standbys are the lowest-id workers; they keep executing tasks
        # like any other worker while also mirroring the head's log.
        n_standbys = min(cfg.head_standbys, cluster.num_nodes - 1)
        if n_standbys > 0:
            log = HeadLog(cfg.log_record_bytes)
            repl = Replicator(
                sim, mpi, events, log,
                standbys=list(range(1, 1 + n_standbys)),
                head=HOST,
                max_lag=cfg.replication_max_lag,
                election_bytes=cfg.log_record_bytes,
            )
        else:
            log = None
            repl = None

        schedule = self.scheduler.schedule(graph, cluster)
        result = FTRunResult(makespan=0.0, schedule=schedule)

        #: Every mapped buffer by id (bootstrap snapshots, log replay).
        all_buffers: dict[int, Buffer] = {}
        for t in graph.tasks():
            for d in t.deps:
                all_buffers.setdefault(d.buffer.buffer_id, d.buffer)
            for b in t.buffers:
                all_buffers.setdefault(b.buffer_id, b)

        #: The node currently acting as head (rebound on failover).
        home = HOST
        dead: set[int] = set()
        live_workers = lambda: [  # noqa: E731 - tiny local helper
            n for n in range(1, cluster.num_nodes) if n not in dead
        ]

        remaining = {t.task_id: graph.in_degree(t) for t in graph.tasks()}
        pending = len(remaining)
        all_done = sim.event("all-tasks-done")
        slots = Resource(sim, capacity=cfg.head_threads, name="head-threads")
        #: Which task last produced each buffer's current value.
        writer_of: dict[int, Task] = {}
        #: Monotone write counter per buffer (checkpoint freshness).
        write_version: dict[int, int] = {}
        #: Full write history per buffer: (version, task) in commit
        #: order — checkpoint recovery replays every write newer than
        #: the snapshot, not just the last one.
        write_log: dict[int, list[tuple[int, Task]]] = {}
        #: Written buffers by id (the checkpointer's worklist).
        written_buffers: dict[int, Buffer] = {}
        #: Head-side snapshots: buffer id → (version, pristine copy).
        checkpoints: dict[int, tuple[int, Any]] = {}
        #: Task ids whose completion is recorded (after a failover this
        #: is rebuilt from the adopted replica — the authoritative view).
        completed: set[int] = set()
        #: Post-failover re-dispatch overrides: task id → surviving
        #: original target, and the ids the workers must dedup.
        forced_target: dict[int, int] = {}
        dedup_tasks: set[int] = set()
        attempts: dict[int, int] = {}
        exec_attempt = itertools.count(1)
        # Serialize recoveries of the same buffer.
        recovering: dict[int, object] = {}
        #: Head-side processes of the current head incarnation.  All are
        #: interrupted when that head dies: their frames must unwind
        #: before the elected successor rebuilds state, so no stale
        #: completion can race the rebuilt directory.
        epoch_procs: list[Any] = []
        failovers: list[FailoverEvent] = []
        head_declared: dict[int, Any] = {}
        ckpt_stop = False

        def cur_epoch() -> int:
            return log.epoch if log is not None else 0

        def log_append(kind: str, nbytes: float | None = None,
                       **data: Any) -> None:
            if repl is None:
                return
            log.append(kind, nbytes=nbytes, **data)
            repl.notify()

        def spawn(gen, name: str):
            """Spawn an epoch-scoped head-side process.

            The wrapper absorbs the failover-teardown Interrupt: these
            frames have no waiter by design, and a failing process with
            no waiter crashes the simulation.  A *simulation-level*
            error (e.g. :class:`ClusterExhausted` when permanent
            failures drain the last worker) is routed to ``all_done``
            instead of being re-raised, so it propagates through the
            main process — which tears this run's machinery down and
            reports the failure to *this job's* caller — rather than
            aborting the whole simulator (and every co-tenant sharing
            it).
            """
            def shielded(g=gen):
                try:
                    yield from g
                except Interrupt:
                    return
                except SimulationError as exc:
                    done = all_done  # current epoch's barrier
                    if not done.triggered:
                        done.fail(exc)
                    return

            proc = sim.process(shielded(), name=name)
            epoch_procs.append(proc)
            return proc

        def declared_event(node: int):
            ev = head_declared.get(node)
            if ev is None:
                ev = sim.event(f"head-declared:{node}")
                head_declared[node] = ev
            return ev

        def on_head_death(node: int, by: int) -> None:
            """Ring verdict on the head: STONITH, then wake the failover.

            A falsely declared head is killed for real before any
            successor takes over — two live heads racing the same
            workers would be worse than one wrongly lost node.
            """
            if not events.node_failed(node):
                events.fail_node(node)
            ev = declared_event(node)
            if not ev.triggered:
                ev.succeed((by, sim.now))

        def target_node(task: Task) -> int:
            forced = forced_target.get(task.task_id)
            if forced is not None and forced not in dead:
                return forced
            node = schedule.node_of(task)
            if node in dead and node != HOST:
                # Deterministic re-map: spread by task id over survivors.
                survivors = live_workers()
                if not survivors:
                    raise ClusterExhausted("all worker nodes have failed")
                node = survivors[task.task_id % len(survivors)]
            return node

        def complete(task: Task) -> None:
            nonlocal pending
            completed.add(task.task_id)
            pending -= 1
            for succ in graph.successors(task):
                remaining[succ.task_id] -= 1
                if remaining[succ.task_id] == 0:
                    spawn(run_task(succ), name=f"ft-task:{succ.name}")
            if pending == 0 and not all_done.triggered:
                # (an aborting run may have failed the barrier already
                # while sibling frames were still draining)
                all_done.succeed()

        # -- buffer movement and recovery -------------------------------
        def ensure_available(buffer: Buffer, chain: frozenset = frozenset()):
            """Generator: guarantee a live copy of ``buffer`` exists.

            ``chain`` carries the buffer ids already being recovered on
            this call stack: needing one of them again means the lost
            value can only be rebuilt from itself (an in-place/INOUT
            producer), which is unrecoverable *without checkpoints* —
            with checkpointing on, the snapshot breaks the cycle.
            """
            bid = buffer.buffer_id
            while True:
                locations = dm.locations(buffer) - dead
                if locations:
                    return
                entry = checkpoints.get(bid)
                if bid in chain:
                    if entry is None:
                        raise RecoveryError(
                            f"buffer {buffer.name} can only be rebuilt "
                            "from its own lost value (in-place producer); "
                            "checkpoint-free lineage recovery cannot help"
                        )
                    # A recursive loss mid-replay of this very buffer:
                    # the in-flight restore sequence is void, tell the
                    # owning frame to start over from the snapshot.
                    raise _RecoveryRestart(bid)
                token = recovering.get(bid)
                if token is not None:
                    yield token  # someone else is already recovering it
                    continue
                producer = writer_of.get(bid)
                if entry is None and producer is None:
                    raise RecoveryError(
                        f"buffer {buffer.name} lost with no recorded "
                        "producer; its initial value existed only on the "
                        "failed node"
                    )
                done = sim.event(f"recover:{buffer.name}")
                recovering[bid] = done
                try:
                    if entry is not None:
                        yield from restore_and_replay(buffer, chain)
                    else:
                        yield from execute_once(producer, chain | {bid})
                        result.reexecuted_tasks += 1
                finally:
                    del recovering[bid]
                    done.succeed()

        def restore_and_replay(buffer: Buffer, chain: frozenset):
            """Generator: rebuild ``buffer`` from its newest checkpoint.

            Restores the snapshot to the head, then replays — in commit
            order — every write newer than the snapshot, so multi-step
            in-place chains come back complete, not just their last
            link.  If a replayed copy is lost again mid-sequence the
            whole sequence restarts from a fresh restore (partial
            replays would otherwise double-apply in-place writes).
            """
            bid = buffer.buffer_id
            while True:
                version, snap = checkpoints[bid]
                _restore_into(buffer, snap)
                dm.commit_restore(buffer)
                result.checkpoint_restores += 1
                cluster.trace.count("ft.checkpoint_restores")
                # Replays append to the log too; keep each task's first
                # occurrence only, in original commit order.
                seen: set[int] = set()
                pending = []
                for ver, task in write_log.get(bid, []):
                    if ver > version and task.task_id not in seen:
                        seen.add(task.task_id)
                        pending.append(task)
                try:
                    for task in pending:
                        yield from execute_once(task, chain | {bid})
                        result.reexecuted_tasks += 1
                except _RecoveryRestart as restart:
                    if restart.buffer_id != bid:
                        raise
                    continue
                return

        def fetch_gate(buffer: Buffer, dst: int):
            """Tiered only: fault-injected fetch failures with retry.

            Under a MemoryPressure arm with ``fetch_fail_prob``, a
            fetch toward ``dst`` may fail before any bytes move; retry
            with exponential backoff up to ``mem_fetch_retries`` times,
            then give up with a buffer-attributed error.  No fault
            plan (or no pressure window) costs zero extra yields.
            """
            fails = getattr(cluster.faults, "fetch_fails", None) \
                if cluster.faults is not None else None
            if fails is None:
                return
            attempt = 0
            while fails(dst, sim.now):
                attempt += 1
                cluster.trace.count("mem.fetch_retries")
                if attempt > cfg.mem_fetch_retries:
                    raise DeviceMemoryError(
                        f"fetch of buffer {buffer.name} toward node "
                        f"{dst} still failing after "
                        f"{cfg.mem_fetch_retries} retries"
                    )
                yield sim.timeout(cfg.mem_fetch_backoff * 2 ** (attempt - 1))

        def safe_source_move(buffer: Buffer, dst: int, chain: frozenset = frozenset()):
            """Generator: materialize ``buffer`` on ``dst``.

            Retries with a fresh source if the source node crashes
            mid-transfer; a crash of ``dst`` propagates to the caller
            (the whole task attempt restarts elsewhere).
            """
            if tiering is not None and dst != home:
                yield from fetch_gate(buffer, dst)
            while True:
                yield from ensure_available(buffer, chain)
                locations = dm.locations(buffer) - dead
                if dst in locations:
                    return
                src = dm.latest(buffer)
                if src in dead or src not in locations:
                    src = home if home in locations else min(locations)
                if src == home:
                    op = events.submit(dst, buffer.buffer_id, buffer.data,
                                       buffer.nbytes, origin=home)
                    watch = [dst]
                else:
                    op = events.exchange(src, dst, buffer.buffer_id,
                                         buffer.nbytes, origin=home)
                    watch = [src, dst]
                try:
                    yield from guarded(watch, op)
                except _NodeCrashed as crash:
                    if crash.node == home:
                        # The head died under us: the failover path owns
                        # recovery; park until the teardown interrupt.
                        yield sim.event("park-for-failover")
                        continue
                    handle_node_death(crash.node)
                    if crash.node == dst:
                        raise  # the task itself must move
                    continue  # source died: pick another source
                if src not in dm.locations(buffer) - dead:
                    # The source was declared dead mid-transfer (possibly
                    # a false positive under heavy transients) and its
                    # copy invalidated; redo the move from a live source.
                    continue
                dm.commit_move(Move(buffer, src, dst))
                return

        # -- task execution with failure racing ---------------------------
        def execute_once(task: Task, chain: frozenset = frozenset()):
            """Generator: run ``task`` to completion, retrying on crashes."""
            recovery = bool(chain)  # lineage/replay re-execution
            while True:
                node = target_node(task)
                attempts[task.task_id] = attempts.get(task.task_id, 0) + 1
                if repl is not None and not recovery:
                    if task.kind in (TaskKind.CLASSICAL, TaskKind.TARGET):
                        log_append(
                            "dispatch", task_id=task.task_id,
                            node=home if task.kind == TaskKind.CLASSICAL
                            else node,
                        )
                        if any(
                            d.type.writes and d.type.reads for d in task.deps
                        ):
                            # INOUT fence: an ambiguous in-place mutation
                            # must be *detectable* from every replica
                            # before it can happen.
                            yield from repl.flush()
                        else:
                            yield from repl.throttle()
                    else:
                        yield from repl.throttle()
                try:
                    if task.kind == TaskKind.CLASSICAL:
                        yield from run_classical(task, recovery)
                    elif task.kind == TaskKind.TARGET_ENTER_DATA:
                        yield from run_enter_data(task, node)
                    elif task.kind == TaskKind.TARGET_EXIT_DATA:
                        yield from run_exit_data(task)
                    elif speculatable(task):
                        yield from run_target_speculative(task, node, chain)
                    else:
                        yield from run_target(task, node, chain)
                    return
                except _NodeCrashed as crash:
                    if crash.node == home:
                        # The head itself died under this frame; the
                        # failover path owns recovery — park until the
                        # epoch teardown interrupts us.
                        yield sim.event("park-for-failover")
                        continue
                    handle_node_death(crash.node)
                    continue  # retry on a survivor

        def run_classical(task: Task, recovery: bool = False):
            analysis.on_host_task(task, dm)
            head = cluster.node(home)
            req = head.cpu.request()
            try:
                yield req
            except Interrupt:
                # Teardown while queued: withdraw the request (a slot
                # granted in the same instant is handed back) so the
                # epoch swap cannot leak CPU capacity.
                if not head.cpu.cancel(req):
                    head.cpu.release()
                raise
            try:
                if task.cost:
                    yield sim.timeout(head.compute_time(task.cost))
                if task.fn is not None:
                    task.fn(*(d.buffer.data for d in task.deps))
            finally:
                head.cpu.release()
            record_writes(task, home, recovery)

        def run_enter_data(task: Task, node: int):
            if node == HOST or node in dead:
                node = home
            if node != home:
                if tiering is not None and tiering.manages(node):
                    # One buffer at a time: a working set larger than the
                    # device is legal for enter data — buffers entered
                    # earlier are clean replicas (the host image
                    # survives) the tier may drop; consumers re-fetch
                    # them read-through.  Each buffer commits (and logs)
                    # as soon as it lands, so a subsequent eviction
                    # updates a directory that already knows the copy.
                    for buf in task.buffers:
                        bid = [buf.buffer_id]
                        dm.pin(bid)
                        try:
                            yield from make_room(task, node, [buf], bid)
                            yield from safe_source_move(buf, node)
                            dm.commit_enter_data(buf, node)
                            log_append("enter_data",
                                       buffer_id=buf.buffer_id, node=node)
                        finally:
                            dm.unpin(bid)
                    return
                for buf in task.buffers:
                    yield from safe_source_move(buf, node)
                for buf in task.buffers:
                    dm.commit_enter_data(buf, node)
                    log_append("enter_data", buffer_id=buf.buffer_id,
                               node=node)

        def run_exit_data(task: Task):
            for buf in task.buffers:
                while True:
                    yield from ensure_available(buf)
                    locations = dm.locations(buf) - dead
                    if home in locations and dm.latest(buf) == home:
                        break
                    src = dm.latest(buf)
                    if src in dead or src not in locations:
                        src = min(locations)
                    if src == home:
                        break
                    payload = yield from events.retrieve(
                        src, buf.buffer_id, buf.nbytes, origin=home
                    )
                    if src not in dm.locations(buf) - dead:
                        continue  # source declared dead mid-retrieve
                    buf.data = payload
                    dm.commit_move(Move(buf, src, home))
                    break
                log_append("exit_data", buffer_id=buf.buffer_id, home=home)
                yield from purge_stale(dm.commit_exit_data(buf))

        def purge_stale(stale):
            """Generator: physically delete invalidated worker copies.

            With replication on, physical deletes are skipped entirely
            (a tombstone model): the directory has already dropped the
            stale copies so nothing will read them, and a deferred
            DELETE racing a post-failover re-materialization of the
            same buffer could destroy the only live copy.
            """
            if repl is not None:
                return
            for buf, holder in stale:
                if holder != home and holder not in dead:
                    yield from events.delete(holder, buf.buffer_id,
                                             origin=home)
                    dm.mem_release(buf, holder)

        # -- tiered data plane under fault tolerance ----------------------
        def perform_eviction(ev):
            """Generator: physically evict one buffer (spill if dirty).

            A victim on a node that died since planning needs no work —
            the crash wiped the device and ``dm.on_node_failure``
            already dropped the tier accounting.
            """
            buf, node = ev.buffer, ev.node
            try:
                if node in dead:
                    return
                if ev.spill:
                    payload = yield from events.retrieve(
                        node, buf.buffer_id, buf.nbytes, origin=home
                    )
                    if node in dead or node not in dm.locations(buf):
                        return
                    buf.data = payload
                    dm.commit_move(Move(buf, node, HOST))
                    cluster.trace.count("mem.spill_bytes", buf.nbytes)
                try:
                    dm.commit_evict(buf, node)
                except ValueError:
                    return  # became the last live copy since planning
                if node not in dead:
                    # Unlike purge_stale's deferred deletes, an eviction
                    # delete is safe under replication: it follows the
                    # completed spill/directory update in the same frame,
                    # and the bytes provably live at home or on another
                    # replica before the device entry is dropped.
                    yield from events.delete(node, buf.buffer_id,
                                             origin=home)
                cluster.trace.count("mem.evict")
            finally:
                dm.mem_release(buf, node)

        def make_room(task: Task, node: int, incoming, pinned_ids):
            """Generator: plan + perform evictions so ``incoming`` fits.

            Backs off on :class:`MemoryWait` by *simulated time* rather
            than the plain runtime's release turnstile: each retry
            releases this frame's pins first, so the last frame standing
            re-plans against the true state and either proceeds or
            raises the fatal task-attributed error.  Time-based back-off
            cannot livelock — co-tenant kernels finish while we sleep.
            """
            backoff = 1
            while True:
                try:
                    busy = tiering.evicting(node)
                    if any(bid in busy for bid in pinned_ids):
                        # One of our own buffers is mid-eviction: let it
                        # land (re-fetch happens on re-plan) before
                        # committing to this placement.
                        raise MemoryWait
                    evictions = dm.plan_evictions(task, node, incoming)
                    break
                except MemoryWait:
                    dm.unpin(pinned_ids)
                    try:
                        yield sim.timeout(cfg.mem_fetch_backoff * backoff)
                        backoff = min(backoff * 2, 64)
                    finally:
                        dm.pin(pinned_ids)
            for ev in evictions:
                yield from perform_eviction(ev)

        def run_target(task: Task, node: int, chain: frozenset = frozenset(),
                       attempt: int = 0):
            if tiering is not None and node != home and tiering.manages(node):
                yield from run_target_tiered(task, node, chain, attempt)
                return
            moves, allocs = dm.plan_for_task(task, node)
            for buf in allocs:
                yield from guarded(node, events.alloc(node, buf.buffer_id,
                                                      payload=buf.data,
                                                      origin=home,
                                                      nbytes=buf.nbytes))
                dm.commit_alloc(buf, node)
            if node == home:
                # Self-dispatch (the elected head doubles as a worker):
                # the directory counts the host image as home-resident,
                # but the node's device table only holds explicit
                # allocations.  Materialize missing deps by reference —
                # a host-to-own-device copy moves no bytes.
                mem = events.memories[node]
                for dep in task.deps:
                    if (
                        dm.is_resident(dep.buffer, node)
                        and dep.buffer.buffer_id not in mem
                    ):
                        yield from guarded(node, events.alloc(
                            node, dep.buffer.buffer_id,
                            payload=dep.buffer.data, origin=home,
                            nbytes=dep.buffer.nbytes,
                        ))
            for dep in task.deps:
                if task.dep_type_for(dep.buffer).reads and not dm.is_resident(
                    dep.buffer, node
                ):
                    yield from safe_source_move(dep.buffer, node, chain)
            dedup = not chain and task.task_id in dedup_tasks
            yield from guarded(node, events.execute(
                node, task, origin=home, attempt=attempt,
                dedup=dedup, fo_epoch=cur_epoch(),
            ))
            record_writes(task, node, recovery=bool(chain))
            yield from purge_stale(dm.commit_task_done(task, node))

        def run_target_tiered(task: Task, node: int, chain: frozenset,
                              attempt: int):
            """``run_target`` with device-capacity admission control.

            The task's buffers are pinned for the frame's lifetime so
            concurrent planners never evict an in-use dependency; the
            plan/back-off loop mirrors the plain runtime's, with
            simulated-time back-off standing in for its release
            turnstile (see :func:`make_room`).
            """
            dep_ids = sorted({d.buffer.buffer_id for d in task.deps})
            dm.pin(dep_ids)
            try:
                backoff = 1
                while True:
                    try:
                        busy = tiering.evicting(node)
                        if any(bid in busy for bid in dep_ids):
                            raise MemoryWait  # let our dep's eviction land
                        _moves, allocs = dm.plan_for_task(task, node)
                        needed = [
                            d.buffer for d in task.deps
                            if task.dep_type_for(d.buffer).reads
                            and not dm.is_resident(d.buffer, node)
                        ]
                        incoming = list(allocs) + needed
                        evictions = dm.plan_evictions(task, node, incoming)
                        break
                    except MemoryWait:
                        dm.unpin(dep_ids)
                        try:
                            yield sim.timeout(
                                cfg.mem_fetch_backoff * backoff
                            )
                            backoff = min(backoff * 2, 64)
                        finally:
                            dm.pin(dep_ids)
                needed_ids = {b.buffer_id for b in needed}
                for bid in sorted({
                    d.buffer.buffer_id for d in task.deps
                    if task.dep_type_for(d.buffer).reads
                }):
                    cluster.trace.count(
                        "mem.miss" if bid in needed_ids else "mem.hit"
                    )
                for ev in evictions:
                    yield from perform_eviction(ev)
                for buf in allocs:
                    yield from guarded(node, events.alloc(
                        node, buf.buffer_id, payload=buf.data, origin=home,
                        nbytes=buf.nbytes, label=buf.name, owner=task.name,
                    ))
                    dm.commit_alloc(buf, node)
                for dep in task.deps:
                    if task.dep_type_for(dep.buffer).reads and (
                        not dm.is_resident(dep.buffer, node)
                    ):
                        yield from safe_source_move(dep.buffer, node, chain)
                dedup = not chain and task.task_id in dedup_tasks
                yield from guarded(node, events.execute(
                    node, task, origin=home, attempt=attempt,
                    dedup=dedup, fo_epoch=cur_epoch(),
                ))
                record_writes(task, node, recovery=bool(chain))
                yield from purge_stale(dm.commit_task_done(task, node))
            finally:
                dm.unpin(dep_ids)

        # -- straggler mitigation -----------------------------------------
        def speculatable(task: Task) -> bool:
            """Target tasks eligible for speculative re-dispatch.

            Only pure-``out`` writers qualify: a losing attempt's kernel
            launch is revoked, but one that already ran merely rewrote
            outputs it fully overwrites — the same idempotence contract
            lineage recovery relies on.  INOUT writers are excluded.
            """
            return (
                cfg.straggler_factor > 0
                # Speculation doubles a task's transient footprint (both
                # attempts stage full working sets); under a bounded
                # device budget the duplicate attempt could itself force
                # the eviction storm it is trying to outrun, so tiered
                # runs fall back to plain (admission-controlled) dispatch.
                and tiering is None
                and task.kind == TaskKind.TARGET
                and task.cost > 0
                and all(not (d.type.writes and d.type.reads) for d in task.deps)
                and len(live_workers()) > 1
            )

        def run_target_speculative(task: Task, node: int, chain: frozenset):
            """Generator: race a backup attempt against a straggler.

            The primary attempt gets ``straggler_factor`` times its cost
            estimate; past that, a second attempt starts on another live
            worker and whichever finishes first wins.  The loser's
            kernel launch is revoked through the event system so a
            late-finishing attempt cannot clobber downstream writes.
            """
            estimate = cluster.node(node).compute_time(task.cost)
            attempt_a = next(exec_attempt)
            primary = sim.process(
                run_target(task, node, chain, attempt_a),
                name=f"ft-spec:{task.name}.a",
            )
            p_done = sim.event(f"settle:{task.name}.a")
            primary.add_callback(lambda _ev: p_done.succeed())
            yield AnyOf(sim, [
                p_done, sim.timeout(cfg.straggler_factor * estimate)
            ])
            if not primary.triggered:
                spare = [n for n in live_workers() if n != node]
                if spare:
                    backup_node = spare[task.task_id % len(spare)]
                    attempt_b = next(exec_attempt)
                    attempts[task.task_id] = attempts.get(task.task_id, 0) + 1
                    result.speculative_attempts += 1
                    cluster.trace.count("ft.speculative_attempts")
                    backup = sim.process(
                        run_target(task, backup_node, chain, attempt_b),
                        name=f"ft-spec:{task.name}.b",
                    )
                    b_done = sim.event(f"settle:{task.name}.b")
                    backup.add_callback(lambda _ev: b_done.succeed())
                    yield AnyOf(sim, [p_done, b_done])
                    first, first_att, second, second_att, second_done = (
                        (primary, attempt_a, backup, attempt_b, b_done)
                        if primary.triggered
                        else (backup, attempt_b, primary, attempt_a, p_done)
                    )
                    if first.ok:
                        if first is backup:
                            result.speculation_wins += 1
                        events.cancel_execution(task.task_id, second_att)
                        if second.is_alive:
                            second.interrupt("lost speculation race")
                        return
                    # The first finisher crashed; absorb its node's death
                    # and let the surviving attempt decide the task.
                    if not isinstance(first.value, _NodeCrashed):
                        raise first.value
                    handle_node_death(first.value.node)
                    if not second.triggered:
                        yield second_done
                    if second.ok:
                        if second is backup:
                            result.speculation_wins += 1
                        return
                    raise second.value  # both attempts crashed: retry
            if not primary.triggered:
                yield p_done  # no spare worker: just wait the straggler out
            if not primary.ok:
                raise primary.value
            return

        def record_writes(task: Task, node: int,
                          recovery: bool = False) -> None:
            for buf in task.writes:
                writer_of[buf.buffer_id] = task
                written_buffers[buf.buffer_id] = buf
                if recovery:
                    # Replays re-derive an already-recorded write: the
                    # version counter must stay aligned with what a
                    # standby reconstructs from the log, or checkpoint
                    # freshness comparisons diverge after a failover.
                    continue
                version = write_version.get(buf.buffer_id, 0) + 1
                write_version[buf.buffer_id] = version
                write_log.setdefault(buf.buffer_id, []).append((version, task))
            if not recovery:
                log_append("task_done", task_id=task.task_id, node=node)

        def guarded(nodes, operation):
            """Generator: race ``operation`` against any of ``nodes`` dying.

            A crash mid-operation may strand the remote half of the
            event (e.g. an EXCHANGE destination waiting on a dead
            source); the origin-side process is interrupted and the
            crash is reported to the caller for retry.
            """
            if isinstance(nodes, int):
                nodes = [nodes]
            for node in nodes:
                if node in dead or events.node_failed(node):
                    raise _NodeCrashed(node)
            proc = sim.process(operation, name="ft-op")
            races = [proc] + [events.failure_event(n) for n in nodes]
            yield AnyOf(sim, races)
            if proc.triggered:
                if not proc.ok:
                    raise proc.value
                return proc.value
            if proc.is_alive:
                proc.interrupt("node failure")
            crashed = next(n for n in nodes if events.node_failed(n))
            raise _NodeCrashed(crashed)

        def handle_node_death(node: int) -> None:
            if node in dead or node == home:
                return  # the head's own death is the failover path's job
            dead.add(node)
            dm.on_node_failure(node)
            result.failures.append(node)
            log_append("node_dead", node=node)

        def run_task(task: Task):
            req = slots.request()
            try:
                yield req
            except Interrupt:
                # Teardown while queued for a head thread: withdraw the
                # request (a slot granted in the same instant is handed
                # back) so the epoch swap cannot leak capacity.
                if not slots.cancel(req):
                    slots.release()
                raise
            analysis.task_begin(task)
            try:
                yield from execute_once(task)
            finally:
                slots.release()
            if task.kind.is_data_movement:
                # ENTER/EXIT completions carry no writes, so they are
                # logged here rather than through record_writes.
                log_append("task_done", task_id=task.task_id, node=home)
            analysis.task_end(task)
            complete(task)

        # -- checkpointing ------------------------------------------------
        def checkpointer():
            """Generator: periodically snapshot written buffers head-side.

            Every snapshot is retrieved through the event system, so
            checkpoint traffic is charged like any other data movement.
            Only buffers whose newest write postdates their last
            snapshot are refreshed.
            """
            while not ckpt_stop:
                yield sim.timeout(cfg.checkpoint_interval)
                if ckpt_stop:
                    return
                for bid in sorted(written_buffers):
                    buf = written_buffers[bid]
                    version = write_version.get(bid, 0)
                    entry = checkpoints.get(bid)
                    if entry is not None and entry[0] >= version:
                        continue  # snapshot already current
                    locations = dm.locations(buf) - dead
                    if not locations:
                        continue  # already lost; recovery owns it now
                    src = dm.latest(buf)
                    if src in dead or src not in locations:
                        src = home if home in locations else min(locations)
                    if src == home:
                        checkpoints[bid] = (version, _snapshot(buf.data))
                    else:
                        try:
                            payload = yield from guarded(
                                [src],
                                events.retrieve(src, bid, buf.nbytes,
                                                origin=home),
                            )
                        except _NodeCrashed as crash:
                            handle_node_death(crash.node)
                            continue
                        if write_version.get(bid, 0) != version:
                            continue  # changed mid-flight; next round
                        checkpoints[bid] = (version, _snapshot(payload))
                    result.checkpoints_taken += 1
                    cluster.trace.count("ft.checkpoints")
                    # Snapshots ride the log by reference: the stored
                    # copy is pristine (restores copy out of it), so
                    # sharing it with the replicas is safe.
                    log_append(
                        "checkpoint",
                        nbytes=cfg.log_record_bytes + buf.nbytes,
                        buffer_id=bid, version=version,
                        snap=checkpoints[bid][1],
                    )

        # -- head failover ------------------------------------------------
        def start_epoch() -> None:
            """Spawn the head-side services of the current incarnation."""
            if repl is not None:
                for s in repl.live_standbys():
                    spawn(repl.pump(s), name=f"repl-pump{s}.e{cur_epoch()}")
            if cfg.checkpoint_interval > 0:
                spawn(checkpointer(), name=f"ft-checkpoint.e{cur_epoch()}")

        def rebuild_from_log(old_head: int) -> int:
            """Replay the adopted replica into fresh head state.

            Only *logged* transitions are replayed — completions, data
            enter/exit, node deaths, checkpoints — which yields a
            conservative directory: every logged write pinned its buffer
            to the writing node, so dropping knowledge of intermediate
            moves can only forget extra replicas, never invent one.

            Returns the number of in-doubt dispatches re-issued.
            """
            nonlocal dm, tiering
            dm2 = DataManager(analysis=dm.analysis)
            ckpt2: dict[int, tuple[int, Any]] = {}
            done2: set[int] = set()
            dispatched: dict[int, int] = {}
            writer2: dict[int, Task] = {}
            wver2: dict[int, int] = {}
            wlog2: dict[int, list[tuple[int, Task]]] = {}
            wbuf2: dict[int, Buffer] = {}
            dropped: set[int] = set()
            for rec in log.records:
                d = rec.data
                if rec.kind == "bootstrap":
                    for bid, snap in d["snapshots"]:
                        ckpt2[bid] = (0, snap)
                elif rec.kind == "dispatch":
                    dispatched[d["task_id"]] = d["node"]
                elif rec.kind == "task_done":
                    tid = d["task_id"]
                    done2.add(tid)
                    dispatched.pop(tid, None)
                    task = graph.task(tid)
                    for buf in task.writes:
                        writer2[buf.buffer_id] = task
                        wbuf2[buf.buffer_id] = buf
                        ver = wver2.get(buf.buffer_id, 0) + 1
                        wver2[buf.buffer_id] = ver
                        wlog2.setdefault(buf.buffer_id, []).append(
                            (ver, task)
                        )
                    if task.kind == TaskKind.TARGET:
                        dm2.commit_task_done(task, d["node"])
                elif rec.kind == "enter_data":
                    dm2.commit_enter_data(
                        all_buffers[d["buffer_id"]], d["node"]
                    )
                elif rec.kind == "exit_data":
                    # Apply with the home that was current when logged.
                    dm2.rehome(d["home"])
                    dm2.commit_exit_data(all_buffers[d["buffer_id"]])
                elif rec.kind == "node_dead":
                    n = d["node"]
                    dropped.add(n)
                    if n != dm2.home:
                        dm2.on_node_failure(n)
                elif rec.kind == "checkpoint":
                    ckpt2[d["buffer_id"]] = (d["version"], d["snap"])
            dm2.rehome(home)  # ``home`` is already the elected winner
            for n in sorted((dead | {old_head}) - dropped):
                if n != home:
                    dm2.on_node_failure(n)
                    log_append("node_dead", node=n)
            # In-doubt dispatches: a dispatch record with no matching
            # completion.  Completed-but-unreplicated work re-runs; the
            # worker-side dedup (task id) and epoch fencing keep that
            # idempotent when the original target survives.
            redispatched = 0
            forced_target.clear()
            dedup_tasks.clear()
            for tid in sorted(dispatched):
                if tid in done2:
                    continue
                redispatched += 1
                node = dispatched[tid]
                task = graph.task(tid)
                alive = (
                    node != old_head
                    and node not in dead
                    and not events.node_failed(node)
                )
                if alive:
                    forced_target[tid] = node
                    dedup_tasks.add(tid)
                    continue
                if node != old_head and not events.node_failed(node):
                    # In-doubt target (declared dead but physically still
                    # running): fence it for real so no zombie in-place
                    # mutation can land after the restore below.
                    events.fail_node(node)
                for dep in task.deps:
                    if dep.type.writes and dep.type.reads:
                        # The lost dispatch may or may not have applied
                        # its in-place mutation; only a snapshot restore
                        # plus write-log replay is well-defined.
                        dm2.invalidate(dep.buffer)
            # Swap the rebuilt state in.
            dm = dm2
            if tiering is not None:
                # Re-arm the tiered store on the rebuilt directory.  The
                # new head reconstructs a conservative residency mirror
                # from the replayed directory: every replica the log
                # still knows about is charged; replicas the log forgot
                # are tombstones the eviction pass collects naturally.
                dm.configure_tiering(
                    {n: cfg.device_memory_bytes
                     for n in range(1, cluster.num_nodes)},
                    make_policy(cfg.eviction_policy),
                    capacity_fn=tiering.capacity_fn,
                )
                tiering = dm.tiering
                for bid in sorted(all_buffers):
                    buf = all_buffers[bid]
                    for n in sorted(dm.locations(buf)):
                        if n != HOST and n not in dead and tiering.manages(n):
                            tiering.charge(n, buf)
            checkpoints.clear()
            checkpoints.update(ckpt2)
            writer_of.clear()
            writer_of.update(writer2)
            write_version.clear()
            write_version.update(wver2)
            write_log.clear()
            write_log.update(wlog2)
            written_buffers.clear()
            written_buffers.update(wbuf2)
            completed.clear()
            completed.update(done2)
            recovering.clear()
            return redispatched

        def failover():
            """Generator: elect, adopt, rebuild, resume (one head death)."""
            nonlocal home, pending, all_done
            old_head = home
            failed_at = sim.now
            # Tear down the dead head's epoch first: every head-side
            # frame unwinds before the successor rebuilds state.
            for proc in epoch_procs:
                if proc.is_alive:
                    proc.interrupt("head failover")
            epoch_procs.clear()
            if repl is None:
                raise RecoveryError(
                    "head node failed with no standbys configured "
                    "(OMPCConfig.head_standbys = 0); head state is "
                    "unrecoverable"
                )
            if old_head not in dead:
                dead.add(old_head)
                result.failures.append(old_head)
            if not any(
                n != old_head and not events.node_failed(n)
                for n in range(cluster.num_nodes)
            ):
                raise RecoveryError("head node failed and no live node "
                                    "remains to elect a successor")
            by, declared_at = yield declared_event(old_head)
            election = yield from repl.elect(
                by, exclude=frozenset(dead | ring._dead | {old_head})
            )
            if election is None:
                raise RecoveryError(
                    "head node failed and no live standby replica "
                    "survives to take over (raise "
                    "OMPCConfig.head_standbys)"
                )
            winner, votes = election
            elected_at = sim.now
            yield from repl.announce(by, winner, [
                n for n in range(cluster.num_nodes)
                if n != old_head and not events.node_failed(n)
            ])
            log.adopt(list(repl.replicas[winner]), log.epoch + 1)
            repl.set_head(winner, votes)
            home = winner
            ring.rebase(winner)
            # The successor replays its replica into fresh control
            # state; the replay is CPU work charged per record.
            replay_cost = len(log.records) * cfg.log_replay_unit_cost
            if replay_cost:
                yield sim.timeout(replay_cost)
            redispatched = rebuild_from_log(old_head)
            # Rebuild the dependency frontier from the replicated
            # completed set and relaunch whatever is runnable.
            remaining.clear()
            pending = 0
            for t in graph.tasks():
                if t.task_id in completed:
                    continue
                remaining[t.task_id] = sum(
                    1 for p in graph.predecessors(t)
                    if p.task_id not in completed
                )
                pending += 1
            all_done = sim.event("all-tasks-done")
            start_epoch()
            failovers.append(FailoverEvent(
                epoch=log.epoch,
                old_head=old_head,
                new_head=winner,
                failed_at=failed_at,
                declared_at=declared_at,
                elected_at=elected_at,
                resumed_at=sim.now,
                replayed_records=len(log.records),
                redispatched_tasks=redispatched,
            ))
            cluster.trace.count("ft.head_failovers")
            if pending == 0:
                all_done.succeed()
                return
            for t in graph.tasks():
                if t.task_id not in completed and remaining[t.task_id] == 0:
                    spawn(run_task(t), name=f"ft-task:{t.name}")

        # -- failure plumbing ---------------------------------------------
        def on_detect(dead_node: int, by: int) -> None:
            # The head learns through the ring; recovery state updates
            # immediately (in-flight guards race the failure event).
            handle_node_death(dead_node)

        ring.on_detect = on_detect
        ring.on_head_detect = on_head_death
        injector = FailureInjector(events)

        def main():
            nonlocal ckpt_stop
            try:
                yield from main_body()
            except BaseException:
                # Unrecoverable abort (or a preemption interrupt from
                # the workload manager): tear this job's machinery down
                # so a shared simulation (multi-tenant cluster views) is
                # not left with orphaned heartbeat/gate processes
                # ticking forever after the error propagates out.  An
                # abort during startup finds the event system not yet
                # started — nothing to tear down there.
                ckpt_stop = True
                ring.stop()
                if events._started:
                    for node in range(cluster.num_nodes):
                        if not events.node_failed(node):
                            events.fail_node(node)
                raise

        def main_body():
            nonlocal ckpt_stop
            yield sim.timeout(cfg.startup_time)
            events.start()
            ring.start()
            injector.arm(failures)
            if repl is not None:
                repl.start()
                # Bootstrap fence: every buffer's pristine initial value
                # reaches every standby before any task may run, so even
                # a first-write INOUT loss is restorable after failover.
                snaps = tuple(
                    (bid, _snapshot(all_buffers[bid].data))
                    for bid in sorted(all_buffers)
                )
                log_append(
                    "bootstrap",
                    nbytes=cfg.log_record_bytes + sum(
                        all_buffers[bid].nbytes for bid in sorted(all_buffers)
                    ),
                    snapshots=snaps,
                )
            start_epoch()
            if repl is not None:
                yield from repl.flush()
            creation = len(remaining) * cfg.task_creation_overhead
            if creation:
                yield sim.timeout(creation)
            sched_cost = (
                graph.num_edges
                * max(cluster.num_nodes - 1, 1)
                * cfg.schedule_unit_cost
            )
            if sched_cost:
                yield sim.timeout(sched_cost)
            if pending == 0:
                all_done.succeed()
            else:
                for root in graph.roots():
                    spawn(run_task(root), name=f"ft-task:{root.name}")
            while True:
                done = all_done
                yield AnyOf(sim, [done, events.failure_event(home)])
                if done.triggered:
                    break
                yield from failover()
            ckpt_stop = True
            ring.stop()
            if not events.node_failed(home):
                yield from events.shutdown(origin=home)
            yield sim.timeout(cfg.shutdown_time)

        main_proc = sim.process(main(), name="ompc-ft-main")

        def finish() -> FTRunResult:
            result.makespan = sim.now - t0
            result.detections = list(ring.detections)
            result.task_attempts = dict(attempts)
            result.counters = dict(cluster.trace.counters)
            result.suspicions_cleared = ring.suspicions_cleared
            result.false_positive_detections = ring.false_positives
            declared = {d for d, _by, _t in ring.detections}
            result.false_negative_detections = len(
                {f.node for f in injector.injected} - declared
            )
            result.transport = dict(mpi.stats)
            result.missed_heartbeat_windows = ring.missed_windows
            result.final_head = home
            result.head_failovers = len(failovers)
            result.failovers = list(failovers)
            if repl is not None:
                result.log_records_appended = log.appended
                result.replication_bytes = repl.stats["bytes_sent"]
                result.log_flushes = repl.stats["flushes"]
                result.replication = dict(repl.stats)
            if active is not None:
                result.counters["faults.dropped_messages"] = (
                    active.dropped_messages
                )
            if cluster.obs.enabled:
                # Fold the transport + event-system tallies into the
                # observer so one object carries the whole run's metrics.
                for stat, value in mpi.stats.items():
                    cluster.obs.count(f"mpi.transport.{stat}", value)
                for counter_name, value in cluster.trace.counters.items():
                    cluster.obs.count(counter_name, value)
                result.obs = cluster.obs
            if analysis.enabled:
                result.analysis = analysis.finalize(
                    [mpi], failed=events._failed | set(dead),
                    obs=cluster.obs,
                )
            return result

        return main_proc, finish


def _snapshot(payload: Any) -> Any:
    """A pristine copy of a device payload for checkpoint storage."""
    if payload is None:
        return None

    if isinstance(payload, np.ndarray):
        return payload.copy()
    return _copy.deepcopy(payload)


def _restore_into(buffer: Any, snapshot: Any) -> None:
    """Restore a snapshot into a buffer, preserving payload identity.

    Payloads travel by reference in the simulation, so host code may
    hold the very array object ``buffer.data`` points at.  Copying the
    snapshot *into* that array (rather than rebinding ``buffer.data`` to
    a fresh one) keeps those aliases live across a recovery — matching
    OpenMP mapped-buffer semantics, where the original host storage is
    what gets refilled.
    """
    fresh = _snapshot(snapshot)  # the stored copy stays pristine
    data = buffer.data
    if (
        isinstance(data, np.ndarray)
        and isinstance(fresh, np.ndarray)
        and data.shape == fresh.shape
        and data.dtype == fresh.dtype
    ):
        np.copyto(data, fresh)
    else:
        buffer.data = fresh


class _NodeCrashed(Exception):
    """Internal control flow: the target node died mid-operation."""

    def __init__(self, node: int):
        super().__init__(f"node {node} crashed")
        self.node = node


class _RecoveryRestart(Exception):
    """Internal control flow: a checkpoint restore sequence was itself
    hit by a failure and must start over from the snapshot."""

    def __init__(self, buffer_id: int):
        super().__init__(f"recovery of buffer {buffer_id} must restart")
        self.buffer_id = buffer_id
