"""The task dependency graph consumed by schedulers and runtimes."""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.omp.task import Task


class TaskGraph:
    """A DAG of :class:`Task` nodes with dependence edges.

    Thin, typed wrapper over :class:`networkx.DiGraph`; nodes are task
    ids (so the graph hashes cheaply) with the Task attached as a node
    attribute.
    """

    def __init__(self):
        self._g = nx.DiGraph()
        self._tasks: dict[int, Task] = {}

    # -- construction ----------------------------------------------------
    def add_task(self, task: Task) -> None:
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id}")
        self._tasks[task.task_id] = task
        self._g.add_node(task.task_id)

    def add_edge(self, pred: Task, succ: Task) -> None:
        if pred.task_id not in self._tasks or succ.task_id not in self._tasks:
            raise ValueError("both endpoints must be added before the edge")
        if pred.task_id == succ.task_id:
            raise ValueError("self-dependence is not allowed")
        self._g.add_edge(pred.task_id, succ.task_id)

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task: Task) -> bool:
        return task.task_id in self._tasks

    @property
    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def task(self, task_id: int) -> Task:
        return self._tasks[task_id]

    def tasks(self) -> Iterator[Task]:
        """Tasks in insertion (program) order."""
        return iter(self._tasks.values())

    def predecessors(self, task: Task) -> list[Task]:
        return [self._tasks[t] for t in sorted(self._g.predecessors(task.task_id))]

    def successors(self, task: Task) -> list[Task]:
        return [self._tasks[t] for t in sorted(self._g.successors(task.task_id))]

    def in_degree(self, task: Task) -> int:
        return self._g.in_degree(task.task_id)

    def roots(self) -> list[Task]:
        return [t for t in self.tasks() if self.in_degree(t) == 0]

    def validate(self) -> None:
        """Raise if the graph has a cycle (dependences must form a DAG)."""
        if not nx.is_directed_acyclic_graph(self._g):
            cycle = nx.find_cycle(self._g)
            raise ValueError(f"task graph has a cycle: {cycle}")

    def topological_order(self) -> list[Task]:
        """Deterministic topological order (ties broken by task id)."""
        order = nx.lexicographical_topological_sort(self._g)
        return [self._tasks[tid] for tid in order]

    def critical_path_cost(self) -> float:
        """Length of the longest compute-cost path (zero-cost comms)."""
        best: dict[int, float] = {}
        for task in self.topological_order():
            incoming = [
                best[p.task_id] for p in self.predecessors(task)
            ] or [0.0]
            best[task.task_id] = max(incoming) + task.cost
        return max(best.values()) if best else 0.0

    def total_cost(self) -> float:
        return sum(t.cost for t in self.tasks())

    def edges(self) -> Iterable[tuple[Task, Task]]:
        for u, v in self._g.edges():
            yield self._tasks[u], self._tasks[v]

    def nx_graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._g
