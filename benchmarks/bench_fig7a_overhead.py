"""Figure 7(a): OMPC runtime overhead analysis.

Setup (§6.2): 1 head node + 1 worker node, a 1x16 Task Bench graph with
the trivial dependency pattern (no inter-task dependencies; the single
point's timesteps serialize through its output buffer), task workload
from 1K iterations (~0.02 ms) to 100M iterations (500 ms).

Definitions (paper): *startup* = process start to gate-thread creation;
*shutdown* = gate-thread destruction to process end; *scheduling* =
time to schedule the whole graph; all normalized by wall time.

Expected shapes: startup/shutdown constant across task sizes; an
~4.7 ms interval after the first event; constant overhead ~25 ms;
overhead fraction dominant below 1M iterations, < 25% at 10 ms tasks,
negligible at >= 50 ms tasks.
"""

from __future__ import annotations

from figutil import BANDWIDTH
from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import OMPCRuntime
from repro.core.runtime import OMPCRunResult
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec, build_omp_program

TASK_SIZES = (1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000)


def run_overhead_cell(iterations: int) -> OMPCRunResult:
    spec = TaskBenchSpec(
        width=1,
        steps=16,
        pattern=Pattern.TRIVIAL,
        kernel=KernelSpec(iterations),
        output_bytes=0.0,
    )
    program = build_omp_program(spec)
    runtime = OMPCRuntime(ClusterSpec(num_nodes=2))
    return runtime.run(program)


def first_event_interval(runtime: OMPCRuntime) -> float:
    cluster = runtime.last_cluster
    assert cluster is not None
    return cluster.trace.total_duration("ompc", "first_event_interval")


class TestFig7a:
    def test_bench_overhead_sweep(self, benchmark):
        def sweep():
            return {it: run_overhead_cell(it) for it in TASK_SIZES}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)

        # Startup and shutdown are constant across task sizes.
        startups = {r.startup_time for r in results.values()}
        shutdowns = {r.shutdown_time for r in results.values()}
        assert len(startups) == 1 and len(shutdowns) == 1

        # Constant overhead fluctuates around 25 ms.
        for r in results.values():
            assert 0.015 < r.constant_overhead < 0.035

        # Overhead dominates for tiny tasks...
        tiny = results[1_000]
        assert tiny.constant_overhead / tiny.makespan > 0.5
        # ...is below 25% at 10M iterations (50 ms tasks; the paper's
        # "reasonable lower bound" of 10 ms per task also satisfies it)...
        mid = results[2_000_000] if 2_000_000 in results else None
        big = results[10_000_000]
        assert big.constant_overhead / big.makespan < 0.25
        # ...and negligible at 500 ms tasks.
        huge = results[100_000_000]
        assert huge.constant_overhead / huge.makespan < 0.02

    def test_bench_ten_ms_tasks_under_25_percent(self, benchmark):
        """10 ms per task is the paper's small-overhead lower bound."""

        def cell():
            return run_overhead_cell(2_000_000)  # 2M iters = 10 ms

        r = benchmark.pedantic(cell, rounds=1, iterations=1)
        assert r.constant_overhead / r.makespan < 0.25

    def test_bench_first_event_interval(self, benchmark):
        """~4.7 ms one-time pause right after the first event."""

        def cell():
            spec = TaskBenchSpec(1, 16, Pattern.TRIVIAL, KernelSpec(1_000))
            runtime = OMPCRuntime(ClusterSpec(num_nodes=2))
            runtime.run(build_omp_program(spec))
            return first_event_interval(runtime)

        interval = benchmark.pedantic(cell, rounds=1, iterations=1)
        assert abs(interval - 0.0047) < 1e-9


def main() -> None:
    rows = []
    for iterations in TASK_SIZES:
        r = run_overhead_cell(iterations)
        task_ms = KernelSpec(iterations).duration * 1e3
        rows.append(
            [
                f"{iterations:,}",
                f"{task_ms:.2f}ms",
                f"{r.makespan * 1e3:.2f}ms",
                f"{r.startup_time / r.makespan * 100:.1f}%",
                f"{r.scheduling_time / r.makespan * 100:.2f}%",
                f"{r.shutdown_time / r.makespan * 100:.1f}%",
                f"{r.constant_overhead * 1e3:.1f}ms",
                f"{r.constant_overhead / r.makespan * 100:.1f}%",
            ]
        )
    print(
        format_table(
            [
                "iterations", "task", "wall", "startup%", "sched%",
                "shutdown%", "const-ovh", "ovh-frac",
            ],
            rows,
            title="Figure 7(a) — OMPC runtime overhead (1 head + 1 worker, 1x16 trivial)",
        )
    )


if __name__ == "__main__":
    main()
