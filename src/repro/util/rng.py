"""Deterministic random-number plumbing.

Every stochastic component receives a :class:`numpy.random.Generator`
derived from a root seed plus a stable string key, so adding a new
consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_rng(seed: int, *keys: str) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and string ``keys``.

    The derivation hashes the keys so that streams are stable across
    runs and independent across distinct key tuples.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for key in keys:
        h.update(b"\x00")
        h.update(key.encode())
    child = int.from_bytes(h.digest()[:8], "little")
    return np.random.default_rng(child)
