"""Plain-text tables and figure-style series output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width ASCII table; floats rendered with 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    unit: str = "s",
) -> str:
    """Figure-style output: one line per series, one column per x value.

    This is the textual equivalent of the paper's line plots — the
    bench harnesses print one of these per sub-figure.
    """
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
        rows.append([name] + [f"{v:.3f}{unit}" for v in values])
    return format_table(headers, rows, title=title)
