"""Tests for the OMPC Bench command-line interface."""

import pytest

from repro.bench.__main__ import DEMO_CONFIG, main, report
from repro.bench.config import ExperimentConfig
from repro.bench.launcher import Launcher


class TestCli:
    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "OMPC Bench" in capsys.readouterr().out

    def test_config_file_runs(self, tmp_path, capsys):
        cfg = tmp_path / "exp.yaml"
        cfg.write_text(
            """
name: cli-test
runtimes: [mpi]
patterns: [trivial]
nodes: [2]
width: 2
steps: 2
iterations: 1000
"""
        )
        assert main([str(cfg), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "MPI" in out

    def test_demo_config_parses(self):
        cfg = ExperimentConfig.from_yaml(DEMO_CONFIG)
        assert cfg.name == "demo"
        assert cfg.width_for(4) == 8

    def test_report_shapes(self):
        cfg = ExperimentConfig(
            name="r", runtimes=("mpi", "starpu"), patterns=("trivial",),
            nodes=(2, 3), width=2, steps=2, iterations=1000,
        )
        launcher = Launcher()
        launcher.run(cfg)
        text = report(launcher, cfg)
        assert "MPI" in text and "StarPU" in text
        assert "nodes" in text

    def test_progress_lines_printed(self, tmp_path, capsys):
        cfg = tmp_path / "exp.yaml"
        cfg.write_text(
            "name: verbose\nruntimes: [mpi]\npatterns: [trivial]\n"
            "nodes: [2]\nwidth: 2\nsteps: 2\niterations: 1000\n"
        )
        main([str(cfg)])
        assert ".." in capsys.readouterr().out
