"""Common interface and helpers for Task Bench runtimes."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cluster.machine import ClusterSpec
from repro.taskbench.graph import TaskBenchSpec


@dataclass
class TBRunResult:
    """Outcome of one Task Bench execution."""

    runtime: str
    makespan: float
    network_bytes: float = 0.0
    network_messages: int = 0
    extras: dict = field(default_factory=dict)


class TaskBenchRuntime(abc.ABC):
    """A distributed runtime capable of executing a Task Bench spec."""

    #: Display name used in benchmark tables.
    name: str = "runtime"

    @abc.abstractmethod
    def run(self, spec: TaskBenchSpec, cluster_spec: ClusterSpec) -> TBRunResult:
        """Execute ``spec`` on a fresh cluster built from ``cluster_spec``.

        ``cluster_spec.num_nodes`` is the paper's node count: comparator
        runtimes use every node as a peer; OMPC uses node 0 as the head
        and the rest as workers.
        """


def block_owner(point: int, width: int, num_nodes: int) -> int:
    """Owner node of a grid point under contiguous block partitioning.

    The first ``width % num_nodes`` nodes take one extra point, exactly
    like Task Bench's own block distribution.
    """
    if not 0 <= point < width:
        raise ValueError(f"point {point} out of range [0, {width})")
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    base, extra = divmod(width, num_nodes)
    if base == 0:
        # Fewer points than nodes: one point per node, rest idle.
        return point
    boundary = (base + 1) * extra
    if point < boundary:
        return point // (base + 1)
    return extra + (point - boundary) // base


def points_of(node: int, width: int, num_nodes: int) -> list[int]:
    """The points owned by ``node`` under block partitioning."""
    return [p for p in range(width) if block_owner(p, width, num_nodes) == node]
