"""Awave on OMPC: one shot per worker node (§6.2).

The program structure mirrors the paper's experiment: the velocity
model is a read-only buffer entered once (the data manager replicates
it on demand, never invalidating it); each shot is one ``target
nowait`` task that reads the model and writes its own image buffer; the
images are retrieved with ``target exit data`` and stacked on the host.

Real NumPy migration runs inside each task's ``fn``; simulated task
cost is charged for a production-scale grid so the cluster-level
behaviour (dispatch, transfers, overlap) is exercised at the paper's
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.awave.models import VelocityModel
from repro.apps.awave.rtm import (
    RtmConfig,
    migrate_shot,
    rtm_cost_seconds,
    shot_positions,
    stack_images,
)
from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRunResult, OMPCRuntime
from repro.omp.api import OmpProgram
from repro.omp.task import depend_in, depend_out


@dataclass
class AwaveResult:
    """Outcome of a distributed Awave run."""

    image: np.ndarray
    run: OMPCRunResult
    num_shots: int

    @property
    def makespan(self) -> float:
        return self.run.makespan


def build_awave_program(
    model: VelocityModel,
    num_shots: int,
    config: RtmConfig | None = None,
    simulated_scale: float = 50.0,
    compute_images: bool = True,
    use_gpu: bool = False,
) -> tuple[OmpProgram, list[np.ndarray]]:
    """The OmpProgram of one Awave run.

    ``simulated_scale`` scales the simulated per-shot cost up to
    production size (a factor of 50 maps our demonstration grids to the
    multi-second shots of the paper).  With ``compute_images=False``
    the tasks carry timing only (for pure scaling benches).
    ``use_gpu`` marks each shot as a nested target region for the
    worker's accelerator (the §7 second-level-offloading extension) —
    RTM kernels are classic GPU candidates.
    """
    config = config or RtmConfig()
    prog = OmpProgram("awave")
    migration_model = model.smoothed(config.smoothing_cells)

    model_buf = prog.buffer(
        nbytes=model.vp.nbytes, data=model, name="velocity-model"
    )
    prog.target_enter_data(model_buf)

    per_shot_cost = simulated_scale * rtm_cost_seconds(
        model.nx, model.nz, config.nt
    )
    images: list[np.ndarray] = []
    image_bufs = []
    for shot_idx, src_ix in enumerate(shot_positions(model, num_shots)):
        image = np.zeros_like(model.vp)
        images.append(image)
        img_buf = prog.buffer(
            nbytes=image.nbytes, data=image, name=f"image{shot_idx}"
        )
        image_bufs.append(img_buf)

        def shot_fn(m, img, _src=src_ix, _cfg=config, _mig=migration_model):
            if compute_images:
                img += migrate_shot(m, _mig, _src, _cfg)

        meta = (
            {"device": "gpu"}
            if use_gpu
            else {"omp_threads": 48}  # second-level intra-node parallelism
        )
        prog.target(
            fn=shot_fn,
            depend=[depend_in(model_buf), depend_out(img_buf)],
            cost=per_shot_cost,
            name=f"shot{shot_idx}",
            **meta,
        )
    prog.target_exit_data(*image_bufs)
    prog.target_exit_data(model_buf)
    return prog, images


def run_awave(
    model: VelocityModel,
    num_workers: int,
    shots_per_worker: int = 1,
    config: RtmConfig | None = None,
    ompc_config: OMPCConfig | None = None,
    simulated_scale: float = 50.0,
    compute_images: bool = True,
    cluster_spec: ClusterSpec | None = None,
    use_gpu: bool = False,
) -> AwaveResult:
    """Run Awave with ``num_workers`` workers, one-or-more shots each.

    Pass a ``cluster_spec`` (e.g. with GPU-equipped nodes) to override
    the default homogeneous CPU cluster; its node count must be
    ``num_workers + 1``.
    """
    if num_workers < 1 or shots_per_worker < 1:
        raise ValueError("num_workers and shots_per_worker must be >= 1")
    if cluster_spec is not None and cluster_spec.num_nodes != num_workers + 1:
        raise ValueError("cluster_spec must have num_workers + 1 nodes")
    num_shots = num_workers * shots_per_worker
    prog, images = build_awave_program(
        model, num_shots, config, simulated_scale, compute_images, use_gpu
    )
    runtime = OMPCRuntime(
        cluster_spec or ClusterSpec(num_nodes=num_workers + 1),
        ompc_config or OMPCConfig(),
    )
    run = runtime.run(prog)
    return AwaveResult(image=stack_images(images), run=run, num_shots=num_shots)
