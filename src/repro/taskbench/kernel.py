"""The Task Bench compute kernel model.

Task Bench kernels spin a busy loop for a configurable number of
iterations.  The paper's calibration: 10M iterations ≈ 50 ms and 100M
iterations ≈ 500 ms (§6.2), i.e. 5 ns per iteration, which is the
default here.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds per busy-loop iteration on the paper's Cascade Lake nodes.
SECONDS_PER_ITERATION = 5e-9


@dataclass(frozen=True)
class KernelSpec:
    """A busy-loop kernel of ``iterations`` steps."""

    iterations: int
    seconds_per_iteration: float = SECONDS_PER_ITERATION

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")
        if self.seconds_per_iteration <= 0:
            raise ValueError("seconds_per_iteration must be > 0")

    @property
    def duration(self) -> float:
        """Nominal task duration in seconds on a speed-1.0 node."""
        return self.iterations * self.seconds_per_iteration

    @classmethod
    def from_duration(cls, seconds: float) -> "KernelSpec":
        """The kernel whose busy loop lasts ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        return cls(iterations=round(seconds / SECONDS_PER_ITERATION))

    # Named calibration points used throughout the paper's evaluation.
    @classmethod
    def paper_50ms(cls) -> "KernelSpec":
        """Fig. 5: 10M iterations ≈ 50 ms per task."""
        return cls(iterations=10_000_000)

    @classmethod
    def paper_500ms(cls) -> "KernelSpec":
        """Fig. 6: 100M iterations ≈ 500 ms per task."""
        return cls(iterations=100_000_000)
