"""The libomptarget device-plugin interface (§4.1, Fig. 2).

libomptarget's agnostic layer talks to accelerators through a
streamlined plugin interface; "each device-specific plugin behaves as a
driver for an accelerator".  This module defines that interface.  The
CUDA plugin of LLVM would be one implementation; our cluster plugin
(:mod:`repro.core.plugin`) is another, and tests provide an in-process
loopback plugin to exercise the agnostic layer in isolation.

All data/compute methods are *generator methods* — they run inside
simulation processes on the host (head node) and advance simulated
time.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.omp.task import Task


class DevicePlugin(abc.ABC):
    """Driver interface between the agnostic layer and target devices.

    Device ids are plugin-local, 0-based.  The six operations map
    one-to-one onto the actions of the OMPC event system (§4.2).
    """

    @abc.abstractmethod
    def number_of_devices(self) -> int:
        """How many devices this plugin exposes."""

    @abc.abstractmethod
    def data_alloc(self, device: int, buffer_id: int):
        """Generator: allocate a device-side entry for a buffer."""

    @abc.abstractmethod
    def data_delete(self, device: int, buffer_id: int):
        """Generator: free the device-side entry."""

    @abc.abstractmethod
    def data_submit(self, device: int, buffer_id: int, payload: Any, nbytes: float):
        """Generator: copy host → device."""

    @abc.abstractmethod
    def data_retrieve(self, device: int, buffer_id: int, nbytes: float):
        """Generator: copy device → host; returns the payload."""

    @abc.abstractmethod
    def data_exchange(
        self, src_device: int, dst_device: int, buffer_id: int, nbytes: float
    ):
        """Generator: copy device → device without staging on the host."""

    @abc.abstractmethod
    def run_target_region(self, device: int, task: Task):
        """Generator: execute a target task on the device."""


class LoopbackPlugin(DevicePlugin):
    """A single 'device' backed by host memory — the no-accelerator
    fallback (§2: execution falls back to regular OpenMP tasks).

    Used by the agnostic-layer tests and as a reference implementation:
    every operation completes after an optional fixed latency.
    """

    def __init__(self, sim, num_devices: int = 1, op_latency: float = 0.0):
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if op_latency < 0:
            raise ValueError("op_latency must be >= 0")
        self.sim = sim
        self._num = num_devices
        self.op_latency = op_latency
        self.tables: list[dict[int, Any]] = [{} for _ in range(num_devices)]
        self.executed: list[tuple[int, int]] = []

    def number_of_devices(self) -> int:
        return self._num

    def _tick(self):
        if self.op_latency:
            yield self.sim.timeout(self.op_latency)

    def data_alloc(self, device: int, buffer_id: int):
        yield from self._tick()
        self.tables[device][buffer_id] = None

    def data_delete(self, device: int, buffer_id: int):
        yield from self._tick()
        del self.tables[device][buffer_id]

    def data_submit(self, device: int, buffer_id: int, payload: Any, nbytes: float):
        yield from self._tick()
        self.tables[device][buffer_id] = payload

    def data_retrieve(self, device: int, buffer_id: int, nbytes: float):
        yield from self._tick()
        return self.tables[device][buffer_id]

    def data_exchange(self, src_device: int, dst_device: int, buffer_id: int, nbytes: float):
        yield from self._tick()
        self.tables[dst_device][buffer_id] = self.tables[src_device][buffer_id]

    def run_target_region(self, device: int, task: Task):
        if task.cost:
            yield self.sim.timeout(task.cost)
        else:
            yield from self._tick()
        if task.fn is not None:
            args = [self.tables[device][d.buffer.buffer_id] for d in task.deps]
            task.fn(*args)
        self.executed.append((device, task.task_id))
