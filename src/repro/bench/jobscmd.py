"""The ``jobs`` subcommand: multi-tenant scheduling on one cluster.

Usage::

    python -m repro.bench jobs --policy backfill --nodes 17 --jobs 24
    python -m repro.bench jobs --policy all --seed 7
    python -m repro.bench jobs --trace workload.json --policy fifo

Generates a seeded Poisson stream of Task Bench jobs (or replays a JSON
workload trace), runs it through the :class:`~repro.jobs.JobManager`
under the chosen admission policy, and prints the cluster-level report:
per-job wait/run/bounded-slowdown rows, queue-depth profile, and
space-shared utilization.  ``--policy all`` runs the same workload under
every policy and appends a comparison table — the quick-look version of
``benchmarks/bench_jobs_backfill.py``.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cluster.machine import Cluster, ClusterSpec
from repro.jobs import (
    POLICIES,
    JobManager,
    PoissonWorkload,
    format_jobs_report,
    jobs_from_json,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench jobs",
        description="Run a multi-tenant OMPC workload through the job "
        "manager and report scheduling metrics.",
    )
    parser.add_argument(
        "--policy",
        choices=sorted(POLICIES) + ["all"],
        default="backfill",
        help="admission policy (or 'all' for a comparison; "
        "default backfill)",
    )
    parser.add_argument("--nodes", type=int, default=17,
                        help="cluster size incl. the manager node "
                        "(default 17 -> 16-node worker pool)")
    parser.add_argument("--jobs", type=int, default=24,
                        help="jobs in the generated workload (default 24)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed (default 7)")
    parser.add_argument("--mean-interarrival", type=float, default=0.01,
                        help="mean Poisson inter-arrival time in "
                        "simulated seconds (default 0.01)")
    parser.add_argument("--trace", type=Path, default=None,
                        help="replay a JSON workload trace instead of "
                        "generating a Poisson stream")
    parser.add_argument("--quick", action="store_true",
                        help="small fast workload (8 jobs) for smoke tests")
    parser.add_argument("--no-per-job", action="store_true",
                        help="suppress the per-job table")
    return parser


def _workload(args: argparse.Namespace):
    if args.trace is not None:
        return jobs_from_json(args.trace.read_text())
    jobs = 8 if args.quick else args.jobs
    return PoissonWorkload(
        seed=args.seed,
        jobs=jobs,
        mean_interarrival=args.mean_interarrival,
        large=(8, 12),
        large_fraction=0.35,
        steps=(3, 6),
        task_seconds=(0.02, 0.08),
    ).generate()


def _run_policy(policy: str, workload, nodes: int):
    cluster = Cluster(ClusterSpec(num_nodes=nodes))
    manager = JobManager(cluster, policy=policy)
    return manager.run(workload)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    workload = _workload(args)
    largest = max(spec.nodes for _, spec in workload) if workload else 0
    if largest > args.nodes - 1:
        raise SystemExit(
            f"workload needs {largest}-node partitions; pass "
            f"--nodes >= {largest + 1}"
        )

    policies = sorted(POLICIES) if args.policy == "all" else [args.policy]
    reports = {}
    for policy in policies:
        report = _run_policy(policy, workload, args.nodes)
        reports[policy] = report
        print(format_jobs_report(report, per_job=not args.no_per_job))
        print()

    if len(reports) > 1:
        from repro.bench.report import format_table

        rows = [
            [
                name,
                f"{r.utilization * 100:.1f}",
                f"{r.mean_wait:.4f}",
                f"{r.mean_bounded_slowdown:.2f}",
                r.backfilled,
                r.completed,
                r.failed,
            ]
            for name, r in reports.items()
        ]
        print(format_table(
            ["policy", "util %", "mean wait (s)", "mean b.slowdown",
             "backfills", "completed", "failed"],
            rows,
            title="policy comparison (same workload)",
        ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
