"""Unit tests for lane packing and the Chrome/Perfetto exporter."""

from repro.obs.exporter import pack_lanes, to_chrome_trace, validate_chrome_trace
from repro.obs.observer import Observer


class FakeSim:
    def __init__(self):
        self.now = 0.0


class TestPackLanes:
    def test_empty(self):
        assert pack_lanes([]) == []

    def test_disjoint_intervals_share_one_lane(self):
        assert pack_lanes([(0, 1), (1, 2), (2, 3)]) == [0, 0, 0]

    def test_overlapping_intervals_get_distinct_lanes(self):
        lanes = pack_lanes([(0.0, 2.0), (1.0, 3.0)])
        assert lanes[0] != lanes[1]

    def test_lane_count_equals_max_concurrency(self):
        # Three mutually overlapping, then one that reuses a freed lane.
        lanes = pack_lanes([(0, 4), (1, 5), (2, 6), (4.5, 7)])
        assert len(set(lanes)) == 3
        assert lanes[3] == lanes[0]  # (4.5,7) fits after (0,4)

    def test_result_is_in_input_order(self):
        lanes = pack_lanes([(5, 6), (0, 1)])
        assert lanes == [0, 0]


def make_observer():
    sim = FakeSim()
    obs = Observer(sim)
    return sim, obs


class TestToChromeTrace:
    def test_concurrent_spans_get_distinct_tids(self):
        _sim, obs = make_observer()
        obs.span("task", "a", 0, 0.0, 2.0)
        obs.span("task", "b", 0, 1.0, 3.0)
        events = [e for e in to_chrome_trace(obs) if e["ph"] == "X"]
        assert events[0]["tid"] != events[1]["tid"]

    def test_categories_occupy_disjoint_lane_blocks_per_node(self):
        _sim, obs = make_observer()
        obs.span("task", "a", 0, 0.0, 1.0)
        obs.span("mpi", "b", 0, 0.0, 1.0)  # same interval, other category
        events = [e for e in to_chrome_trace(obs) if e["ph"] == "X"]
        assert events[0]["tid"] != events[1]["tid"]

    def test_pid_is_node_id(self):
        _sim, obs = make_observer()
        obs.span("task", "a", 3, 0.0, 1.0)
        (event,) = [e for e in to_chrome_trace(obs) if e["ph"] == "X"]
        assert event["pid"] == 3

    def test_flow_events_share_id_across_nodes(self):
        _sim, obs = make_observer()
        flow = obs.new_flow()
        obs.span("mpi", "send", 0, 0.0, 1.0, flow_id=flow, flow_phase="s")
        obs.span("mpi", "recv", 1, 1.0, 1.0, flow_id=flow, flow_phase="f")
        events = to_chrome_trace(obs)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == flow
        assert finishes[0]["bp"] == "e"

    def test_gauges_become_counter_events(self):
        sim, obs = make_observer()
        sim.now = 1.5
        obs.gauge_add("node1.evq", 2, node=1)
        counters = [e for e in to_chrome_trace(obs) if e["ph"] == "C"]
        assert counters == [
            {
                "name": "node1.evq",
                "ph": "C",
                "ts": 1.5e6,
                "pid": 1,
                "tid": 0,
                "args": {"value": 2.0},
            }
        ]

    def test_metadata_names_processes_and_threads(self):
        _sim, obs = make_observer()
        obs.span("task", "a", 0, 0.0, 1.0)
        obs.span("task", "b", 1, 0.0, 1.0)
        metas = [e for e in to_chrome_trace(obs) if e["ph"] == "M"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in metas
            if e["name"] == "process_name"
        }
        assert names == {0: "node0 (head)", 1: "node1"}
        assert any(e["name"] == "thread_name" for e in metas)

    def test_exported_trace_validates(self):
        sim, obs = make_observer()
        flow = obs.new_flow()
        obs.span("mpi", "send", 0, 0.0, 1.0, flow_id=flow, flow_phase="s")
        obs.span("mpi", "recv", 1, 1.0, 1.0, flow_id=flow, flow_phase="f")
        sim.now = 2.0
        obs.gauge_add("head.inflight", 1)
        assert validate_chrome_trace(to_chrome_trace(obs)) == []


class TestValidateChromeTrace:
    def test_flags_missing_fields(self):
        problems = validate_chrome_trace(
            [
                {"name": "x"},  # no ph
                {"name": "y", "ph": "Z", "ts": 0, "pid": 0},  # unknown ph
                {"name": "z", "ph": "X", "ts": -1, "pid": 0},  # bad ts, no tid/dur
                {"name": "w", "ph": "s", "ts": 0, "pid": 0},  # flow without id
            ]
        )
        assert len(problems) == 6
        assert any("missing 'ph'" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert any("flow event missing 'id'" in p for p in problems)

    def test_accepts_clean_events(self):
        assert validate_chrome_trace(
            [{"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]
        ) == []
