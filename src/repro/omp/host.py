"""Single-node host OpenMP runtime.

Executes an :class:`OmpProgram` on one node's cores, the way LLVM's
OpenMP runtime would when no offloading device exists (§2: "the OpenMP
runtime falls back the execution of foo and bar to regular OpenMP
tasks").  Dependencies gate a shared ready queue that feeds a pool of
worker threads; data-movement tasks complete instantly (host and
"device" memory coincide).

This is both the intra-node fallback and the paper's programming-
scalability story: the same program object later runs on the cluster
runtime without modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import Cluster, ClusterSpec
from repro.cluster.node import Node
from repro.omp.api import OmpProgram
from repro.omp.task import Task, TaskKind
from repro.sim.resources import Store


@dataclass
class HostRunResult:
    """Outcome of a host-runtime execution."""

    makespan: float
    #: task_id -> (start, end) simulated execution interval
    schedule: dict[int, tuple[float, float]] = field(default_factory=dict)

    @property
    def num_tasks(self) -> int:
        return len(self.schedule)


class HostRuntime:
    """Dependency-driven executor over one node's hardware threads."""

    def __init__(self, num_threads: int = 4, speed: float = 1.0):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.speed = speed

    def run(self, program: OmpProgram) -> HostRunResult:
        program.validate()
        cluster = Cluster(ClusterSpec(num_nodes=1))
        sim = cluster.sim
        node = Node(
            sim,
            0,
            cluster.spec.node.__class__(
                cores=self.num_threads,
                threads=self.num_threads,
                speed=self.speed,
            ),
        )

        graph = program.graph
        remaining = {t.task_id: graph.in_degree(t) for t in graph.tasks()}
        ready: Store = Store(sim, name="ready-queue")
        done = sim.event("all-done")
        result = HostRunResult(makespan=0.0)
        pending = len(remaining)

        def complete(task: Task) -> None:
            nonlocal pending
            pending -= 1
            for succ in graph.successors(task):
                remaining[succ.task_id] -= 1
                if remaining[succ.task_id] == 0:
                    ready.put(succ)
            if pending == 0:
                done.succeed()

        def execute(task: Task):
            start = sim.now
            if task.kind == TaskKind.TARGET or task.kind == TaskKind.CLASSICAL:
                if task.cost > 0:
                    yield sim.timeout(node.compute_time(task.cost))
                if task.fn is not None:
                    task.fn(*(d.buffer.data for d in task.deps))
            # Data-movement tasks are no-ops on a single node.
            result.schedule[task.task_id] = (start, sim.now)
            complete(task)

        def worker():
            while True:
                task = yield ready.get()
                if task is None:  # shutdown sentinel
                    return
                yield from execute(task)

        workers = [
            sim.process(worker(), name=f"omp-worker{i}")
            for i in range(self.num_threads)
        ]

        def control():
            # The control thread enqueues root tasks; workers cascade the
            # rest as dependences resolve.
            roots = graph.roots()
            if not roots:
                done.succeed()
            for task in roots:
                yield ready.put(task)
            yield done
            for _ in workers:
                yield ready.put(None)

        sim.process(control(), name="omp-control")
        sim.run(check_deadlock=True)
        result.makespan = sim.now
        return result
