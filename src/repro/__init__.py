"""repro — a reproduction of "The OpenMP Cluster Programming Model"
(Yviquel et al., ICPP 2022).

OMPC distributes OpenMP ``target`` tasks across cluster nodes by hiding
MPI data movement and HEFT scheduling behind task dependences.  This
package rebuilds the complete system on a deterministic discrete-event
cluster simulator:

* :mod:`repro.sim` — the simulation kernel;
* :mod:`repro.cluster` — nodes, the fair-share network, tracing;
* :mod:`repro.mpi` — simulated MPI (matching, collectives, VCIs);
* :mod:`repro.omp` — the OpenMP programming model and host runtime;
* :mod:`repro.core` — OMPC itself: device plugin, event system, data
  manager, HEFT scheduler, runtime, fault tolerance;
* :mod:`repro.runtimes` — the comparator runtimes (MPI, StarPU-like,
  Charm++-like) of the paper's evaluation;
* :mod:`repro.taskbench` — Task Bench, CCR sizing, METG;
* :mod:`repro.apps.awave` — RTM seismic imaging;
* :mod:`repro.bench` — OMPC Bench (configs, launcher, stats, reports).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"
