"""Shared utilities: unit helpers, deterministic RNG plumbing, logging."""

from repro.util.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    Gbps,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    fmt_bytes,
    fmt_time,
)
from repro.util.rng import derive_rng

__all__ = [
    "GB",
    "GIB",
    "Gbps",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "derive_rng",
    "fmt_bytes",
    "fmt_time",
]
