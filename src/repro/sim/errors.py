"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when ``check_deadlock`` is enabled
    and the event heap drains while processes are still alive.

    A drained heap with live processes means every remaining process is
    waiting on an event that nothing can ever trigger — in this codebase
    that is virtually always an MPI message that was never sent or an
    OMPC event whose completion notification was lost.
    """

    def __init__(self, waiting: list[str]):
        self.waiting = list(waiting)
        detail = ", ".join(waiting[:8])
        if len(waiting) > 8:
            detail += f", … ({len(waiting)} total)"
        super().__init__(f"simulation deadlocked; live processes: {detail}")


class Interrupt(Exception):
    """Thrown *inside* a process generator by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue (e.g. a worker node
    observing a simulated node failure) or let it propagate, which kills
    the process with this exception as its outcome.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause
