"""The observability core: structured spans, flows, and metric hooks.

One :class:`Observer` is threaded through every layer of a run — the
simulator clock is read, never advanced, so instrumentation charges
**zero simulated time**.  Components record:

* **spans** — closed intervals on a ``(node, category)`` lane.  The
  span taxonomy (see DESIGN.md):

  ========  ======================================================
  category  what its spans cover
  ========  ======================================================
  ``task``  target-task lifecycle: ``wait-slot``, ``fetch``,
            ``execute``, ``commit`` (head-side orchestration) and
            ``kernel`` (worker-side compute, incl. GPU staging)
  ``mpi``   point-to-point messages: ``send``/``recv``/``ack``
            (one span per transmission attempt under the reliable
            transport, with ``attempt``/``dropped`` args)
  ``sched``  runtime phases: ``startup``, ``task-creation``,
            ``heft``, ``shutdown``
  ``data``  data-manager traffic: per-buffer ``move`` and
            ``delete`` operations
  ``ompc``  event-system internals: per-event handler spans and
            the first-event lazy-initialization interval
  ========  ======================================================

* **flows** — a send span carries ``flow_phase="s"`` and its matching
  receive instant ``flow_phase="f"`` under one ``flow_id``; the
  exporter turns the pair into a Perfetto arrow from sender lane to
  receiver lane.

* **metrics** — counters and time-series gauges on the attached
  :class:`~repro.obs.metrics.MetricsRegistry`.

When tracing is off (``OMPCConfig.trace`` is False, the default) the
shared :data:`NULL_OBSERVER` is installed instead: every method is a
no-op, so the instrumented hot paths cost a handful of dead calls and
nothing else.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry

#: The span categories the exporter and report know about, in lane order.
CATEGORIES = ("task", "sched", "data", "mpi", "ompc", "job")


@dataclass(frozen=True)
class ObsSpan:
    """A closed interval on one node's timeline."""

    cat: str
    name: str
    node: int
    start: float
    end: float
    args: tuple = ()
    #: Flow-arrow linkage: spans sharing a ``flow_id`` are connected
    #: ``"s"`` (origin) → ``"f"`` (terminus) by the exporter.
    flow_id: int | None = None
    flow_phase: str | None = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _OpenObsSpan:
    """Mutable handle between :meth:`Observer.begin` and ``end``."""

    cat: str
    name: str
    node: int
    start: float
    args: dict


class Observer:
    """Collects spans and metrics from one simulation run."""

    enabled = True

    def __init__(self, sim):
        self.sim = sim
        self.spans: list[ObsSpan] = []
        self.metrics = MetricsRegistry()
        self._flow_ids = itertools.count(1)

    # -- spans ----------------------------------------------------------
    def span(
        self,
        cat: str,
        name: str,
        node: int,
        start: float,
        end: float,
        flow_id: int | None = None,
        flow_phase: str | None = None,
        **args: Any,
    ) -> ObsSpan:
        span = ObsSpan(
            cat, name, node, start, end,
            tuple(sorted(args.items())), flow_id, flow_phase,
        )
        self.spans.append(span)
        return span

    def begin(self, cat: str, name: str, node: int, **args: Any) -> _OpenObsSpan:
        return _OpenObsSpan(cat, name, node, self.sim.now, args)

    def end(
        self,
        open_span: _OpenObsSpan | None,
        flow_id: int | None = None,
        flow_phase: str | None = None,
        **args: Any,
    ) -> ObsSpan | None:
        """Close ``open_span`` at the current time (``None`` is a no-op,
        so call sites may conditionally skip :meth:`begin`)."""
        if open_span is None:
            return None
        merged = dict(open_span.args, **args) if args else open_span.args
        return self.span(
            open_span.cat, open_span.name, open_span.node,
            open_span.start, self.sim.now,
            flow_id=flow_id, flow_phase=flow_phase, **merged,
        )

    def instant(
        self,
        cat: str,
        name: str,
        node: int,
        flow_id: int | None = None,
        flow_phase: str | None = None,
        **args: Any,
    ) -> ObsSpan:
        """A zero-duration span marking one point in time."""
        now = self.sim.now
        return self.span(cat, name, node, now, now, flow_id, flow_phase, **args)

    def new_flow(self) -> int:
        """Allocate a fresh flow id for a send→receive arrow pair."""
        return next(self._flow_ids)

    # -- metrics ----------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def gauge_set(self, name: str, value: float, node: int = 0) -> None:
        self.metrics.gauge(name, node).set(self.sim.now, value)

    def gauge_add(self, name: str, delta: float, node: int = 0) -> None:
        self.metrics.gauge(name, node).add(self.sim.now, delta)

    # -- queries ----------------------------------------------------------
    def find(
        self, cat: str | None = None, name: str | None = None,
        node: int | None = None,
    ) -> Iterator[ObsSpan]:
        for span in self.spans:
            if cat is not None and span.cat != cat:
                continue
            if name is not None and span.name != name:
                continue
            if node is not None and span.node != node:
                continue
            yield span

    def categories(self) -> set[str]:
        return {span.cat for span in self.spans}


class NullObserver:
    """The do-nothing observer installed when tracing is off.

    Mirrors the full :class:`Observer` surface; every method returns
    immediately so instrumented code needs no ``if traced:`` guards on
    simple calls (sites that would *build* expensive arguments should
    still check :attr:`enabled`).
    """

    enabled = False
    __slots__ = ()

    def span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def begin(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end(self, *args: Any, **kwargs: Any) -> None:
        return None

    def instant(self, *args: Any, **kwargs: Any) -> None:
        return None

    def new_flow(self) -> int:
        return 0

    def count(self, *args: Any, **kwargs: Any) -> None:
        return None

    def gauge_set(self, *args: Any, **kwargs: Any) -> None:
        return None

    def gauge_add(self, *args: Any, **kwargs: Any) -> None:
        return None

    def find(self, *args: Any, **kwargs: Any) -> Iterator[ObsSpan]:
        return iter(())

    def categories(self) -> set[str]:
        return set()


#: Shared no-op observer; safe to use as a default everywhere.
NULL_OBSERVER = NullObserver()
