"""Tests for the METG (minimum effective task granularity) search."""

import pytest

from repro.runtimes import MpiSyncRuntime, OmpcRuntimeAdapter
from repro.taskbench import Pattern
from repro.taskbench.metg import MetgResult, efficiency, find_metg


class TestEfficiency:
    def test_large_tasks_are_efficient(self):
        e = efficiency(
            MpiSyncRuntime(), Pattern.NO_COMM, nodes=4, duration=1.0,
            width=8, steps=4, ccr=4.0, bandwidth=12.5e9,
        )
        assert e > 0.95

    def test_tiny_tasks_inefficient_on_ompc(self):
        # OMPC's ~20-25 ms constant overhead dwarfs microsecond tasks.
        e = efficiency(
            OmpcRuntimeAdapter(), Pattern.NO_COMM, nodes=4, duration=1e-5,
            width=8, steps=4, ccr=4.0, bandwidth=12.5e9,
        )
        assert e < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            efficiency(
                MpiSyncRuntime(), Pattern.NO_COMM, 4, 0.0, 8, 4, 4.0, 1e9
            )


class TestFindMetg:
    def test_mpi_metg_below_ompc_metg(self):
        """The thin MPI baseline tolerates much finer tasks than OMPC —
        the granularity story of Fig. 7a in one comparison."""
        kwargs = dict(pattern=Pattern.NO_COMM, nodes=4, steps=4, ccr=4.0)
        mpi = find_metg(MpiSyncRuntime(), **kwargs)
        ompc = find_metg(OmpcRuntimeAdapter(), **kwargs)
        assert mpi.metg_seconds < ompc.metg_seconds
        # OMPC's METG sits in the single-digit-millisecond range, in
        # line with the paper's "10 ms per task seems like a reasonable
        # lower bound" observation.
        assert 1e-4 < ompc.metg_seconds < 0.05

    def test_result_is_actually_effective(self):
        res = find_metg(
            OmpcRuntimeAdapter(), Pattern.NO_COMM, nodes=4, steps=4, ccr=4.0
        )
        e = efficiency(
            OmpcRuntimeAdapter(), Pattern.NO_COMM, 4, res.metg_seconds,
            width=8, steps=4, ccr=4.0, bandwidth=12.5e9,
        )
        assert e >= res.target_efficiency - 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            find_metg(MpiSyncRuntime(), Pattern.NO_COMM, 4, target=0.0)
        with pytest.raises(ValueError):
            find_metg(MpiSyncRuntime(), Pattern.NO_COMM, 4, lo=1.0, hi=0.5)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="never reaches"):
            # 100% efficiency is unreachable once any overhead exists.
            find_metg(
                OmpcRuntimeAdapter(), Pattern.NO_COMM, nodes=4, steps=4,
                ccr=4.0, target=1.0, hi=0.5,
            )
