"""Round-robin communicator pool for VCI utilisation.

The OMPC event system "creates a set of Communicators at the beginning
of the program.  Whenever a new event is created, one communicator is
selected in a round-robin fashion based on its MPI tag" (§4.2).  MPICH
maps distinct communicators (and, recently, distinct tags) to distinct
hardware Virtual Communication Interfaces, so spreading events across
communicators spreads them across network contexts.
"""

from __future__ import annotations

from repro.mpi.comm import Communicator, MpiWorld


class CommunicatorPool:
    """A fixed set of duplicated communicators, selected by tag."""

    def __init__(self, mpi: MpiWorld, size: int):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.comms: list[Communicator] = [mpi.new_communicator() for _ in range(size)]

    def __len__(self) -> int:
        return len(self.comms)

    def select(self, tag: int) -> Communicator:
        """The communicator assigned to ``tag`` (round-robin by value)."""
        if tag < 0:
            raise ValueError("tag must be >= 0")
        return self.comms[tag % len(self.comms)]
