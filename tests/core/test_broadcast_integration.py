"""Tests for the §7 broadcast-event extension wired into the runtime."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out

BASE = dict(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)


def one_to_many_program(consumers=6, nbytes=64_000_000):
    """One read-only model consumed by `consumers` independent tasks."""
    prog = OmpProgram()
    model = np.zeros(8)
    model_buf = prog.buffer(nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    outputs = []
    for i in range(consumers):
        out = np.zeros(8)
        outputs.append(out)
        buf = prog.buffer(out.nbytes, data=out, name=f"o{i}")
        prog.target(
            fn=lambda m, o: np.copyto(o, m + 1.0),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=0.05,
            name=f"consumer{i}",
        )
    return prog, outputs


class TestBroadcastIntegration:
    def test_broadcast_replaces_exchanges(self):
        prog, _ = one_to_many_program()
        cfg = OMPCConfig(broadcast_events=True, **BASE)
        res = OMPCRuntime(ClusterSpec(num_nodes=7), cfg).run(prog)
        assert res.counters.get("ompc.events.broadcast", 0) >= 5
        # No per-consumer head-orchestrated exchanges remain.
        assert res.counters.get("ompc.events.exchange_dst", 0) == 0

    def test_results_identical_with_and_without(self):
        prog1, out1 = one_to_many_program(nbytes=1000)
        OMPCRuntime(
            ClusterSpec(num_nodes=7), OMPCConfig(broadcast_events=False, **BASE)
        ).run(prog1)
        prog2, out2 = one_to_many_program(nbytes=1000)
        OMPCRuntime(
            ClusterSpec(num_nodes=7), OMPCConfig(broadcast_events=True, **BASE)
        ).run(prog2)
        for a, b in zip(out1, out2):
            np.testing.assert_allclose(a, b)
            np.testing.assert_allclose(a, np.ones(8))

    def test_broadcast_faster_for_large_fanout(self):
        prog1, _ = one_to_many_program(consumers=12)
        off = OMPCRuntime(
            ClusterSpec(num_nodes=13), OMPCConfig(broadcast_events=False, **BASE)
        ).run(prog1)
        prog2, _ = one_to_many_program(consumers=12)
        on = OMPCRuntime(
            ClusterSpec(num_nodes=13), OMPCConfig(broadcast_events=True, **BASE)
        ).run(prog2)
        assert on.makespan < off.makespan

    def test_written_buffers_never_broadcast(self):
        # A buffer that any task writes must go through normal coherency.
        prog = OmpProgram()
        shared = prog.buffer(1_000_000, name="shared")
        prog.target_enter_data(shared)
        from repro.omp.task import depend_inout

        prog.target(depend=[depend_inout(shared)], cost=0.01, name="writer")
        for i in range(3):
            prog.target(depend=[depend_in(shared)], cost=0.01, name=f"r{i}")
        cfg = OMPCConfig(broadcast_events=True, **BASE)
        res = OMPCRuntime(ClusterSpec(num_nodes=5), cfg).run(prog)
        assert res.counters.get("ompc.events.broadcast", 0) == 0

    def test_disabled_by_default(self):
        prog, _ = one_to_many_program(nbytes=1000)
        res = OMPCRuntime(ClusterSpec(num_nodes=7)).run(prog)
        assert res.counters.get("ompc.events.broadcast", 0) == 0
