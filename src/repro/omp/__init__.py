"""OpenMP host model: tasks, dependences, target regions, task graphs.

This subpackage plays the role of Clang's OpenMP code generation plus
the host-side OpenMP runtime (§2 of the paper): user code declares
buffers and annotated tasks (``task`` / ``target nowait`` with
``depend`` and ``map`` clauses), and the model builds the dependency
graph the OMPC runtime consumes.  A single-node host runtime
(:mod:`repro.omp.host`) executes the same program on one machine's
cores, giving the paper's "prototype on a laptop, scale to a cluster"
workflow a concrete meaning in this codebase.
"""

from repro.omp.api import OmpProgram
from repro.omp.depend import DependenceAnalyzer
from repro.omp.task import (
    Buffer,
    Dep,
    DepType,
    Task,
    TaskKind,
    depend_in,
    depend_inout,
    depend_out,
)
from repro.omp.taskgraph import TaskGraph

__all__ = [
    "Buffer",
    "Dep",
    "DepType",
    "DependenceAnalyzer",
    "OmpProgram",
    "Task",
    "TaskGraph",
    "TaskKind",
    "depend_in",
    "depend_inout",
    "depend_out",
]
