"""Tests for the JobManager: admission, isolation, faults, telemetry."""

import pytest

from repro.cluster.machine import Cluster, ClusterSpec
from repro.core import NodeFailure
from repro.jobs import JobManager, JobSpec, JobState
from repro.jobs.workload import _taskbench_job
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program


def tb_job(name, nodes, tenant="t", task_seconds=0.01, steps=2, **kw):
    return _taskbench_job(name, tenant, nodes, width=nodes - 1,
                          steps=steps, task_seconds=task_seconds, **kw)


def ft_job(name, nodes, failures, steps=9, task_seconds=0.05,
           max_attempts=2):
    spec = TaskBenchSpec(
        width=nodes - 1, steps=steps, pattern=Pattern.STENCIL_1D,
        kernel=KernelSpec(iterations=max(1, round(task_seconds / 5e-9))),
    )
    return JobSpec(
        name=name,
        program=lambda: build_omp_program(spec),
        nodes=nodes,
        fault_tolerant=True,
        failures=failures,
        max_attempts=max_attempts,
    )


def manager(nodes=10, policy="fifo"):
    return JobManager(Cluster(ClusterSpec(num_nodes=nodes)), policy=policy)


class TestLifecycle:
    def test_single_job_completes(self):
        mgr = manager()
        report = mgr.run([(0.0, tb_job("solo", 3))])
        assert report.completed == 1
        job = mgr.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.partition == (1, 2, 3)
        assert job.result.makespan > 0
        assert report.utilization > 0

    def test_concurrent_jobs_space_shared(self):
        mgr = manager(nodes=10)
        report = mgr.run([
            (0.0, tb_job("a", 4)),
            (0.0, tb_job("b", 4)),
        ])
        assert report.completed == 2
        a, b = mgr.jobs
        # Same arrival, enough nodes: both start immediately, disjoint.
        assert a.start_time == b.start_time == 0.0
        assert not set(a.partition) & set(b.partition)

    def test_queueing_when_full(self):
        mgr = manager(nodes=6)  # 5-node pool
        report = mgr.run([
            (0.0, tb_job("first", 4)),
            (0.0, tb_job("second", 4)),
        ])
        assert report.completed == 2
        first, second = mgr.jobs
        assert second.start_time >= first.finish_time
        assert second.wait_time > 0

    def test_oversized_submit_rejected(self):
        mgr = manager(nodes=5)
        with pytest.raises(ValueError, match="only has 4"):
            mgr.submit(tb_job("huge", 6))

    def test_rerun_accumulates(self):
        mgr = manager()
        mgr.run([(0.0, tb_job("one", 3))])
        report = mgr.run([(None and 0.0 or mgr.sim.now, tb_job("two", 3))])
        assert report.total_jobs == 2
        assert report.completed == 2


class TestTelemetry:
    def test_report_metrics(self):
        mgr = manager(nodes=6)
        report = mgr.run([
            (0.0, tb_job("a", 4, tenant="alice")),
            (0.0, tb_job("b", 4, tenant="bob")),
        ])
        assert report.policy == "fifo"
        assert report.pool_nodes == 5
        assert 0 < report.utilization <= 1.0
        assert report.queue_depth_max >= 1
        assert report.counters["jobs.submitted"] == 2
        assert report.counters["jobs.completed"] == 2
        rec = {r.name: r for r in report.records}
        assert rec["b"].slowdown > 1.0
        assert rec["b"].bounded_slowdown >= 1.0
        # Tenant accounting: both tenants were charged node-seconds.
        assert mgr.tenant_usage["alice"] > 0
        assert mgr.tenant_usage["bob"] > 0

    def test_job_spans_recorded(self):
        mgr = manager()
        mgr.run([(0.0, tb_job("traced", 3))])
        spans = [s for s in mgr.obs.spans if s.cat == "job"]
        names = {s.name for s in spans}
        assert "traced:queued" in names
        assert "traced:run" in names


class TestFaults:
    def test_worker_crash_resumed_in_place(self):
        mgr = manager(nodes=10)
        report = mgr.run([
            (0.0, ft_job("victim", 4,
                         failures=(NodeFailure(time=0.005, node=2),))),
            (0.0, tb_job("bystander", 3)),
        ])
        assert report.completed == 2
        victim = mgr.jobs[0]
        # In-place recovery: no requeue, the FT runtime rode it out.
        assert victim.state is JobState.COMPLETED
        assert victim.requeues == 0
        assert victim.result.failures == [2]
        # The dead physical node (virtual 2 -> physical 3) left the pool.
        assert mgr.pool.capacity == 8
        assert 3 not in mgr.pool.free_nodes()

    def test_head_crash_requeued_on_fresh_nodes(self):
        mgr = manager(nodes=10)
        report = mgr.run([
            (0.0, ft_job("doomed", 4,
                         failures=(NodeFailure(time=0.005, node=0),))),
            (0.0, tb_job("bystander", 3)),
        ])
        assert report.completed == 2
        assert report.requeued == 1
        doomed = mgr.jobs[0]
        assert doomed.state is JobState.COMPLETED
        assert doomed.attempts == 2
        # Attempt 1 held (1,2,3,4) and its head (physical 1) died; the
        # retry must avoid the retired node and carry no stale failures.
        assert 1 not in doomed.partition
        assert doomed.pending_failures == ()
        assert mgr.pool.capacity == 8
        # The bystander on a disjoint partition never noticed.
        assert mgr.jobs[1].state is JobState.COMPLETED
        assert mgr.jobs[1].requeues == 0

    def test_gives_up_after_max_attempts(self):
        mgr = manager(nodes=10)
        report = mgr.run([
            (0.0, ft_job("hopeless", 4, max_attempts=1,
                         failures=(NodeFailure(time=0.005, node=0),))),
        ])
        assert report.failed == 1
        job = mgr.jobs[0]
        assert job.state is JobState.FAILED
        assert job.attempts == 1
        assert "gave up after 1 attempts" in job.error

    def test_shrunken_pool_fails_unsatisfiable_jobs(self):
        # 5-node pool, 5-node job: the head-crash retires one node, so
        # the requeued retry can never fit again -> FAILED, not hung.
        mgr = manager(nodes=6)
        report = mgr.run([
            (0.0, ft_job("shrinker", 5, max_attempts=3,
                         failures=(NodeFailure(time=0.005, node=0),))),
        ])
        job = mgr.jobs[0]
        assert job.state is JobState.FAILED
        assert "pool shrank" in job.error
        assert report.failed == 1
