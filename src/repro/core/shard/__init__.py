"""Sharded control plane: multi-head task-graph ownership.

See :mod:`repro.core.shard.plane` for the architecture overview.
"""

from repro.core.shard.directory import (
    BlockPolicy,
    ConsistentHashPolicy,
    PartitionPolicy,
    ShardDirectory,
    make_partition_policy,
    stable_hash,
)
from repro.core.shard.messages import (
    LEASE_TAG,
    NOTIFY_TAG,
    Lease,
    Notify,
    parse_lease,
    parse_notify,
)
from repro.core.shard.plane import (
    ShardedRuntime,
    ShardPlaneError,
)
from repro.core.shard.report import ShardRunResult, ShardStats

__all__ = [
    "BlockPolicy",
    "ConsistentHashPolicy",
    "LEASE_TAG",
    "Lease",
    "NOTIFY_TAG",
    "Notify",
    "PartitionPolicy",
    "ShardDirectory",
    "ShardPlaneError",
    "ShardRunResult",
    "ShardStats",
    "ShardedRuntime",
    "make_partition_policy",
    "parse_lease",
    "parse_notify",
    "stable_hash",
]
