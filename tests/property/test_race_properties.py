"""Property-based tests for the vector-clock race detector.

The detector is driven directly (no simulator): seeded random task
graphs are replayed serially in program order — a valid topological
order, since dependence edges always point forward — feeding
``task_begin`` / ``kernel`` / ``task_end`` exactly like the runtime
does.  Two properties pin down soundness and precision:

* a program whose ``depend`` clauses are complete produces **zero**
  race findings (no false positives);
* dropping any one dependence edge is detected **exactly** when the
  graph no longer orders a conflicting pair — the reported (pair,
  buffer) set equals the ground truth computed from the transitive
  closure (no false positives *and* no false negatives).
"""

from types import SimpleNamespace

import networkx as nx
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import RaceDetector
from repro.omp import DependenceAnalyzer, TaskGraph
from repro.omp.task import Buffer, Dep, DepType, Task, TaskKind

dep_types = st.sampled_from([DepType.IN, DepType.OUT, DepType.INOUT])
clause = st.tuples(st.integers(min_value=0, max_value=3), dep_types)
program_strategy = st.lists(
    st.lists(clause, min_size=1, max_size=3, unique_by=lambda c: c[0]),
    min_size=2,
    max_size=12,
)


def build_tasks(program_clauses):
    buffers = [Buffer(100, name=f"b{i}") for i in range(4)]
    tasks = []
    for task_id, clauses in enumerate(program_clauses):
        deps = tuple(Dep(buffers[bi], dt) for bi, dt in clauses)
        tasks.append(Task(task_id=task_id, kind=TaskKind.TARGET, deps=deps))
    return buffers, tasks


def assemble(tasks, drop_edge=None):
    """Build the graph from the dependence analyzer, optionally
    omitting one edge (a forgotten ``depend`` clause)."""
    analyzer = DependenceAnalyzer()
    graph = TaskGraph()
    for task in tasks:
        graph.add_task(task)
        for pred, succ in analyzer.edges_for(task):
            if drop_edge == (pred.task_id, succ.task_id):
                continue
            graph.add_edge(pred, succ)
    return graph


def replay(graph):
    detector = RaceDetector()
    detector.program_begin(SimpleNamespace(name="prop", graph=graph))
    for task in sorted(graph.tasks(), key=lambda t: t.task_id):
        detector.task_begin(task)
        detector.kernel(task, 1, detector.ctx_token(task))
        detector.task_end(task)
    return detector.finalize()


def conflicting_pairs(tasks):
    """Ground truth: (earlier, later, buffer) triples where the actual
    footprints conflict (shared buffer, at least one write)."""
    triples = []
    for i, a in enumerate(tasks):
        for b in tasks[i + 1:]:
            for buf in a.touched:
                t1 = a.dep_type_for(buf)
                t2 = b.dep_type_for(buf)
                if t1 is None or t2 is None:
                    continue
                if t1.writes or t2.writes:
                    triples.append((a, b, buf))
    return triples


@given(program_strategy)
@settings(deadline=None, max_examples=60)
def test_complete_dependences_never_race(program_clauses):
    _, tasks = build_tasks(program_clauses)
    findings = replay(assemble(tasks))
    assert [f for f in findings if f.rule == "missing-dep-race"] == []


@given(program_strategy, st.data())
@settings(deadline=None, max_examples=60)
def test_dropped_edge_detected_iff_pair_left_unordered(
    program_clauses, data
):
    _, tasks = build_tasks(program_clauses)
    edges = sorted(
        {(p.task_id, s.task_id) for p, s in assemble(tasks).edges()}
    )
    assume(edges)
    dropped = data.draw(st.sampled_from(edges), label="dropped edge")

    graph = assemble(tasks, drop_edge=dropped)
    closure = nx.transitive_closure_dag(graph.nx_graph())

    expected = {
        (frozenset((a.name, b.name)), buf.name)
        for a, b, buf in conflicting_pairs(tasks)
        if not closure.has_edge(a.task_id, b.task_id)
    }
    actual = {
        (frozenset(f.tasks), f.buffer)
        for f in replay(graph)
        if f.rule == "missing-dep-race"
    }
    assert actual == expected
