"""Unit tests driving the RaceDetector directly (no simulator)."""

from types import SimpleNamespace

from repro.analysis import RaceDetector, demo_program
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout


def replay(program, detector=None):
    """Execute the program's graph serially in program order, feeding
    the detector exactly like the simulator would."""
    det = detector or RaceDetector()
    det.program_begin(program)
    for task in sorted(program.graph.tasks(), key=lambda t: t.task_id):
        det.task_begin(task)
        det.kernel(task, 1, det.ctx_token(task))
        det.task_end(task)
    return det, det.finalize()


class TestHappensBefore:
    def test_clean_demo_has_no_findings(self):
        _, findings = replay(demo_program(racy=False))
        assert findings == []

    def test_racy_demo_reports_exactly_the_missing_dep(self):
        _, findings = replay(demo_program(racy=True))
        races = [f for f in findings if f.rule == "missing-dep-race"]
        assert len(races) == 1
        assert len(findings) == 1  # and nothing else
        (race,) = races
        assert race.tasks == ("reader", "writer")
        assert race.buffer == "B"
        assert "read/write" in race.message

    def test_transitive_order_suppresses_race(self):
        # w -> mid -> r orders w and r even without a direct clause.
        prog = OmpProgram(name="chain")
        b = prog.buffer(8, name="b")
        prog.target(depend=[depend_inout(b)], cost=1e-3, name="w")
        prog.target(depend=[depend_inout(b)], cost=1e-3, name="mid")
        prog.target(depend=[depend_in(b)], cost=1e-3, name="r")
        _, findings = replay(prog)
        assert findings == []


class TestContextLifecycle:
    def make(self):
        prog = demo_program(racy=False)
        det = RaceDetector()
        det.program_begin(prog)
        tasks = sorted(prog.graph.tasks(), key=lambda t: t.task_id)
        return det, tasks

    def test_token_is_live_context_then_none(self):
        det, tasks = self.make()
        task = tasks[0]
        assert det.ctx_token(task) is None  # not begun yet
        det.task_begin(task)
        token = det.ctx_token(task)
        assert token is not None
        det.task_end(task)
        assert det.ctx_token(task) is None  # recovery work: no token

    def test_task_begin_is_idempotent(self):
        det, tasks = self.make()
        task = tasks[0]
        det.task_begin(task)
        token = det.ctx_token(task)
        det.task_begin(task)  # failover relaunch
        assert det.ctx_token(task) == token

    def test_stale_token_records_nothing(self):
        det, tasks = self.make()
        target = next(t for t in tasks if t.name == "writer")
        det.task_begin(target)
        det.kernel(target, 1, token=999_999)  # token from another life
        assert det.recorded_accesses == 0


class TestDiagnostics:
    def test_stale_host_read(self):
        prog = OmpProgram(name="stale")
        b = prog.buffer(8, name="b")
        task = prog.task(depend=[depend_in(b)], cost=1e-3, name="reduce")
        det = RaceDetector()
        det.program_begin(prog)
        det.task_begin(task)
        dm = SimpleNamespace(host_is_stale=lambda buf: 2)
        det.host_task(task, dm)
        stale = [f for f in det.findings if f.rule == "stale-host-read"]
        assert len(stale) == 1
        assert "node 2" in stale[0].message
        det.host_task(task, dm)  # reported once, not per call
        assert len([f for f in det.findings
                    if f.rule == "stale-host-read"]) == 1

    def test_use_before_map_only_with_explicit_mapping(self):
        prog = OmpProgram(name="maps")
        a = prog.buffer(8, name="a")
        b = prog.buffer(8, name="b")
        prog.target_enter_data(a)
        task = prog.target(depend=[depend_in(b)], cost=1e-3, name="t")
        det = RaceDetector()
        det.program_begin(prog)
        det.mapped(a)
        det.check_mapped(task, b)
        assert [f.rule for f in det.findings] == ["use-before-map"]

        # A program with no enter data at all relies on lazy mapping —
        # the rule must stay quiet.
        lazy = OmpProgram(name="lazy")
        c = lazy.buffer(8, name="c")
        task2 = lazy.target(depend=[depend_in(c)], cost=1e-3, name="t2")
        det2 = RaceDetector()
        det2.program_begin(lazy)
        det2.check_mapped(task2, c)
        assert det2.findings == []
