"""Baseline schedulers for the scheduler ablation (Abl. A).

§4.4 motivates static HEFT over the dynamic work-stealing LLVM uses on
a single node.  These baselines quantify that choice: round-robin and
random ignore both load and locality; min-load balances compute but
ignores communication.  All reuse the §4.4 pinning rules for classical
and data-movement tasks.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.core.datamanager import HOST
from repro.core.scheduler.base import Schedule, Scheduler
from repro.omp.task import TaskKind
from repro.omp.taskgraph import TaskGraph
from repro.util.rng import derive_rng


class RoundRobinScheduler(Scheduler):
    """Target tasks dealt to workers cyclically in program order."""

    def schedule(self, graph: TaskGraph, cluster: Cluster) -> Schedule:
        workers = self.worker_nodes(cluster)
        assignment: dict[int, int] = {}
        i = 0
        for task in graph.tasks():
            if task.kind == TaskKind.TARGET:
                assignment[task.task_id] = workers[i % len(workers)] if workers else HOST
                i += 1
        self.pin_special_tasks(graph, assignment)
        return Schedule(assignment)


class RandomScheduler(Scheduler):
    """Uniform random placement (seeded, reproducible)."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def schedule(self, graph: TaskGraph, cluster: Cluster) -> Schedule:
        workers = self.worker_nodes(cluster)
        rng = derive_rng(self.seed, "random-scheduler")
        assignment: dict[int, int] = {}
        for task in graph.tasks():
            if task.kind == TaskKind.TARGET:
                assignment[task.task_id] = (
                    int(rng.choice(workers)) if workers else HOST
                )
        self.pin_special_tasks(graph, assignment)
        return Schedule(assignment)


class MinLoadScheduler(Scheduler):
    """Greedy least-accumulated-work placement (load, not locality)."""

    def schedule(self, graph: TaskGraph, cluster: Cluster) -> Schedule:
        workers = self.worker_nodes(cluster)
        assignment: dict[int, int] = {}
        load = {n: 0.0 for n in workers}
        for task in graph.topological_order():
            if task.kind != TaskKind.TARGET:
                continue
            if not workers:
                assignment[task.task_id] = HOST
                continue
            # Deterministic tie-break on node id.
            node = min(workers, key=lambda n: (load[n], n))
            duration = task.cost / cluster.node(node).spec.speed
            load[node] += duration
            assignment[task.task_id] = node
        self.pin_special_tasks(graph, assignment)
        return Schedule(assignment)
