"""Unit tests for the MPI request/message checker."""

from types import SimpleNamespace

from repro.analysis import MpiChecker
from repro.analysis.findings import Severity


def fake_request(triggered=False):
    """A stand-in with the two attributes the checker touches."""
    return SimpleNamespace(
        event=SimpleNamespace(triggered=triggered), observer=None
    )


def fake_world(queues):
    """``queues`` maps (rank, comm_id) -> list of messages."""
    return SimpleNamespace(_queues={
        key: SimpleNamespace(items=list(msgs))
        for key, msgs in queues.items()
    })


def message(src, dst, tag):
    return SimpleNamespace(src=src, dst=dst, tag=tag)


def rules(findings):
    return sorted(f.rule for f in findings)


class TestRequestAudit:
    def test_waited_request_is_clean(self):
        checker = MpiChecker()
        req = fake_request(triggered=True)
        checker.on_isend(req, comm_id=1, src=0, dst=1, tag=7)
        checker.on_wait(req)
        assert checker.finalize() == []

    def test_leaked_request(self):
        checker = MpiChecker()
        req = fake_request(triggered=True)
        checker.on_isend(req, comm_id=1, src=0, dst=1, tag=7)
        (finding,) = checker.finalize()
        assert finding.rule == "leaked-request"
        assert finding.severity == Severity.WARNING
        assert "rank 0" in finding.message

    def test_tested_request_is_consumed(self):
        checker = MpiChecker()
        req = fake_request(triggered=True)
        checker.on_irecv(req, comm_id=1, dst=1, src=0, tag=7)
        checker.on_test(req)
        assert checker.finalize() == []

    def test_unmatched_recv(self):
        checker = MpiChecker()
        req = fake_request(triggered=False)
        checker.on_irecv(req, comm_id=1, dst=1, src=-1, tag=7)
        (finding,) = checker.finalize()
        assert finding.rule == "unmatched-recv"
        assert "ANY_SOURCE" in finding.message

    def test_cancel_deregisters_entirely(self):
        # The satellite fix: a cancelled receive is neither a leak nor
        # an unmatched receive — it must vanish from the books.
        checker = MpiChecker()
        req = fake_request(triggered=False)
        checker.on_irecv(req, comm_id=1, dst=1, src=0, tag=7)
        checker.on_cancel(req)
        assert checker.finalize() == []
        assert checker._by_request == {}
        assert checker._records == []

    def test_failed_nodes_are_excluded(self):
        checker = MpiChecker()
        req = fake_request(triggered=True)
        checker.on_isend(req, comm_id=1, src=0, dst=3, tag=7)
        assert checker.finalize(failed={3}) == []


class TestUnmatchedSends:
    def test_queued_message_reported_with_count(self):
        checker = MpiChecker()
        world = fake_world({
            (1, 2): [message(0, 1, 5), message(0, 1, 5)],
        })
        (finding,) = checker.finalize(worlds=[world])
        assert finding.rule == "unmatched-send"
        assert "(2×)" in finding.message

    def test_service_comm_is_exempt(self):
        checker = MpiChecker()
        checker.register_comm(2, service=True)
        assert checker.is_service(2)
        world = fake_world({(1, 2): [message(0, 1, 5)]})
        assert checker.finalize(worlds=[world]) == []

    def test_failed_destination_is_exempt(self):
        checker = MpiChecker()
        world = fake_world({(1, 2): [message(0, 1, 5)]})
        assert checker.finalize(worlds=[world], failed={1}) == []


class TestDeadlock:
    def post_blocked_recv(self, checker, owner, peer):
        req = fake_request(triggered=False)
        checker.on_irecv(req, comm_id=1, dst=owner, src=peer, tag=0)
        checker.on_wait(req)

    def test_wait_cycle_is_an_error(self):
        checker = MpiChecker()
        self.post_blocked_recv(checker, owner=1, peer=2)
        self.post_blocked_recv(checker, owner=2, peer=1)
        cycles = [f for f in checker.finalize()
                  if f.rule == "deadlock-cycle"]
        assert len(cycles) == 1
        assert cycles[0].severity == Severity.ERROR

    def test_chain_without_cycle_is_not_deadlock(self):
        checker = MpiChecker()
        self.post_blocked_recv(checker, owner=1, peer=2)
        self.post_blocked_recv(checker, owner=2, peer=3)
        assert rules(checker.finalize()) == [
            "unmatched-recv", "unmatched-recv",
        ]
