"""Compute-node model: cores, relative speed, and memory."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.core import Simulator
from repro.sim.resources import Container, Resource
from repro.util.units import GB


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node.

    ``speed`` is a relative compute-rate multiplier: a task whose nominal
    cost is ``t`` seconds takes ``t / speed`` seconds on this node.  The
    paper's cluster is homogeneous (speed 1.0 everywhere), but HEFT is a
    heterogeneous-cluster algorithm, so the model supports per-node
    speeds and the scheduler tests exercise them.

    ``accelerators`` models node-local GPUs for the §7 second-level-
    offloading extension: a nested target region runs
    ``accelerator_speed`` times faster than a *single core* at nominal
    speed (the same baseline task costs are expressed in), after staging
    its buffers over PCIe at ``pcie_bandwidth``/``pcie_latency``.  The
    default of 200 puts one GPU at ~4x the throughput of the node's 48
    cores, a typical ratio for bandwidth-bound HPC kernels.
    """

    cores: int = 48
    threads: int = 96
    speed: float = 1.0
    memory_bytes: float = 384 * GB
    accelerators: int = 0
    accelerator_speed: float = 200.0
    pcie_bandwidth: float = 16e9
    pcie_latency: float = 10e-6

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.threads < self.cores:
            raise ValueError("threads must be >= cores")
        if self.speed <= 0:
            raise ValueError("speed must be > 0")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be > 0")
        if self.accelerators < 0:
            raise ValueError("accelerators must be >= 0")
        if self.accelerator_speed <= 0:
            raise ValueError("accelerator_speed must be > 0")
        if self.pcie_bandwidth <= 0 or self.pcie_latency < 0:
            raise ValueError("pcie parameters must be positive")


class Node:
    """A live node inside a running simulation."""

    def __init__(self, sim: Simulator, node_id: int, spec: NodeSpec):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        #: Hardware execution contexts: one slot per SMT thread.
        self.cpu = Resource(sim, capacity=spec.threads, name=f"node{node_id}.cpu")
        #: Main memory accounting (allocations charge this container).
        self.memory = Container(
            sim, capacity=spec.memory_bytes, init=0.0, name=f"node{node_id}.mem"
        )
        #: Node-local accelerators (None when the node has no GPUs).
        self.gpus = (
            Resource(sim, capacity=spec.accelerators, name=f"node{node_id}.gpu")
            if spec.accelerators > 0
            else None
        )

    def compute_time(self, nominal_seconds: float) -> float:
        """Wall time this node needs for a nominally-costed computation."""
        if nominal_seconds < 0:
            raise ValueError("nominal_seconds must be >= 0")
        return nominal_seconds / self.spec.speed

    def compute(self, nominal_seconds: float):
        """Process generator: occupy one hardware thread for the duration.

        Use as ``yield from node.compute(cost)`` inside a sim process.
        """
        yield self.cpu.request()
        try:
            yield self.sim.timeout(self.compute_time(nominal_seconds))
        finally:
            self.cpu.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} cores={self.spec.cores} speed={self.spec.speed}>"
