"""OMPC as a Task Bench runtime.

Builds the OpenMP program a Task Bench port would annotate
(:func:`repro.taskbench.bench.build_omp_program`) and runs it through
the *entire* OMPC stack: HEFT scheduling at the implicit barrier, data
manager planning, event-system messaging, and the head-node in-flight
limit.  Node 0 of the cluster spec is the head; the remaining nodes are
workers — matching the paper's deployment (§3.1, Fig. 1; the overhead
experiment uses "1 head node and 1 single worker node").
"""

from __future__ import annotations

from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.core.scheduler import Scheduler
from repro.runtimes.base import TaskBenchRuntime, TBRunResult
from repro.taskbench.bench import build_omp_program
from repro.taskbench.graph import TaskBenchSpec


class OmpcRuntimeAdapter(TaskBenchRuntime):
    """Drive Task Bench through the full OMPC runtime."""

    name = "OMPC"

    def __init__(
        self,
        config: OMPCConfig | None = None,
        scheduler: Scheduler | None = None,
    ):
        self.config = config or OMPCConfig()
        self.scheduler = scheduler

    def run(self, spec: TaskBenchSpec, cluster_spec: ClusterSpec) -> TBRunResult:
        program = build_omp_program(spec)
        runtime = OMPCRuntime(cluster_spec, self.config, self.scheduler)
        res = runtime.run(program)
        return TBRunResult(
            runtime=self.name,
            makespan=res.makespan,
            network_bytes=res.network_bytes,
            network_messages=res.network_messages,
            extras={
                "startup": res.startup_time,
                "scheduling": res.scheduling_time,
                "shutdown": res.shutdown_time,
                "counters": res.counters,
            },
        )
