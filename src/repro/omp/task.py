"""Tasks, buffers, and dependence clauses.

These are the program-level objects Clang would materialize from
``#pragma omp`` annotations: a :class:`Buffer` is a mapped variable, a
:class:`Dep` is one item of a ``depend(...)`` clause, and a
:class:`Task` is an outlined region (classical task, target task, or a
``target enter/exit data`` transfer task).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class DepType(enum.Enum):
    """Direction of a ``depend`` clause item."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (DepType.IN, DepType.INOUT)

    @property
    def writes(self) -> bool:
        return self in (DepType.OUT, DepType.INOUT)


class TaskKind(enum.Enum):
    """What kind of outlined region a task is.

    ``CLASSICAL`` is an ordinary ``#pragma omp task`` — under OMPC these
    are pinned to the head node (§4.4).  ``TARGET`` is a ``target
    nowait`` compute region.  ``TARGET_ENTER_DATA`` / ``TARGET_EXIT_DATA``
    are the pure data-movement tasks of ``target (enter|exit) data
    nowait`` — they execute no code and are co-scheduled with the task
    that consumes/produces their buffer (§4.4).
    """

    CLASSICAL = "classical"
    TARGET = "target"
    TARGET_ENTER_DATA = "enter_data"
    TARGET_EXIT_DATA = "exit_data"

    @property
    def is_data_movement(self) -> bool:
        return self in (TaskKind.TARGET_ENTER_DATA, TaskKind.TARGET_EXIT_DATA)


_buffer_ids = itertools.count()


class Buffer:
    """A mapped memory region (one ``map`` clause operand).

    ``nbytes`` drives all communication costing.  ``data`` optionally
    carries a real payload (e.g. a NumPy array) so distributed
    executions produce real numbers; the runtime moves the *reference*
    and the simulation charges time for the *bytes*.
    """

    def __init__(self, nbytes: float, data: Any = None, name: str = ""):
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.buffer_id: int = next(_buffer_ids)
        self.nbytes = float(nbytes)
        self.data = data
        self.name = name or f"buf{self.buffer_id}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Buffer {self.name} {self.nbytes:.0f}B>"


@dataclass(frozen=True)
class Dep:
    """One ``depend(type: buffer)`` item."""

    buffer: Buffer
    type: DepType


def depend_in(buffer: Buffer) -> Dep:
    """``depend(in: buffer)`` — task reads the buffer."""
    return Dep(buffer, DepType.IN)


def depend_out(buffer: Buffer) -> Dep:
    """``depend(out: buffer)`` — task overwrites the buffer."""
    return Dep(buffer, DepType.OUT)


def depend_inout(buffer: Buffer) -> Dep:
    """``depend(inout: buffer)`` — task reads then updates the buffer."""
    return Dep(buffer, DepType.INOUT)


@dataclass
class Task:
    """One node of the task graph.

    ``cost`` is the nominal compute duration in seconds on a speed-1.0
    node; data-movement tasks have cost 0.  ``fn`` optionally carries a
    real callable invoked with the task's buffers (in dependence order)
    when the task executes — pure-timing workloads leave it ``None``.
    """

    task_id: int
    kind: TaskKind
    deps: tuple[Dep, ...] = ()
    cost: float = 0.0
    fn: Callable[..., Any] | None = None
    name: str = ""
    #: For data-movement tasks: the buffers being mapped in/out.
    buffers: tuple[Buffer, ...] = ()
    meta: dict = field(default_factory=dict)
    #: The task's *actual* access footprint, when it differs from the
    #: declared ``deps`` — what the outlined region really touches, as a
    #: compiler-instrumented build would observe.  Empty means the
    #: declared clauses are exact.  The race detector records accesses
    #: (not clauses), which is what makes a missing ``depend`` item
    #: detectable.
    accesses: tuple[Dep, ...] = ()

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("cost must be >= 0")
        if self.kind.is_data_movement:
            if self.fn is not None:
                raise ValueError("data-movement tasks execute no code")
            if not self.buffers:
                raise ValueError("data-movement tasks must name their buffers")
        if not self.name:
            self.name = f"{self.kind.value}{self.task_id}"

    # Convenience views over the depend clause -------------------------------
    @property
    def reads(self) -> tuple[Buffer, ...]:
        return tuple(d.buffer for d in self.deps if d.type.reads)

    @property
    def writes(self) -> tuple[Buffer, ...]:
        return tuple(d.buffer for d in self.deps if d.type.writes)

    @property
    def touched(self) -> tuple[Buffer, ...]:
        seen: dict[int, Buffer] = {}
        for d in self.deps:
            seen.setdefault(d.buffer.buffer_id, d.buffer)
        for b in self.buffers:
            seen.setdefault(b.buffer_id, b)
        return tuple(seen.values())

    @property
    def accesses_or_deps(self) -> tuple[Dep, ...]:
        """The actual footprint: explicit ``accesses`` if given, else the
        declared clauses (which are then exact by definition)."""
        return self.accesses if self.accesses else self.deps

    def dep_type_for(self, buffer: Buffer) -> DepType | None:
        """The strongest dependence type this task declares on ``buffer``."""
        result: DepType | None = None
        for d in self.deps:
            if d.buffer.buffer_id != buffer.buffer_id:
                continue
            if d.type == DepType.INOUT:
                return DepType.INOUT
            if result is None:
                result = d.type
            elif result != d.type:
                return DepType.INOUT
        return result

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} ({self.kind.value})>"
