"""Kernel fast-path unit tests: two-lane queue, input guards,
process-table compaction, and O(1) interrupt semantics."""

from __future__ import annotations

import random

import pytest

from repro.sim.core import (
    NORMAL,
    URGENT,
    Interrupt,
    SimulationError,
    Simulator,
)


def _trace(sim: Simulator) -> list[tuple[float, int, str]]:
    """Record every processed event as ``(time, priority, name)``."""
    seen: list[tuple[float, int, str]] = []
    sim._event_tap = lambda t, p, ev: seen.append((t, p, ev.name))
    return seen


# ---------------------------------------------------------------------------
# two-lane event queue
# ---------------------------------------------------------------------------

def _same_time_program(sim: Simulator) -> None:
    # Fast lane: a, b then c; heap: the urgent event (scheduled between
    # b and c).  URGENT must pre-empt all same-time NORMAL events even
    # though it entered the queue later.
    sim.timeout(0.0).name = "a"
    sim.timeout(0.0).name = "b"
    urgent = sim.event("u")
    urgent._value = None
    sim._schedule(urgent, 0.0, URGENT)
    sim.timeout(0.0).name = "c"


@pytest.mark.parametrize("fastpath", [True, False])
def test_same_time_urgent_preempts_fifo(fastpath):
    sim = Simulator(fastpath=fastpath)
    seen = _trace(sim)
    _same_time_program(sim)
    sim.run()
    assert seen == [
        (0.0, URGENT, "u"),
        (0.0, NORMAL, "a"),
        (0.0, NORMAL, "b"),
        (0.0, NORMAL, "c"),
    ]


def test_future_event_does_not_overtake_fast_lane():
    sim = Simulator(fastpath=True)
    seen = _trace(sim)
    sim.timeout(1.0).name = "later"
    sim.timeout(0.0).name = "now"
    sim.run()
    assert [name for _, _, name in seen] == ["now", "later"]
    assert sim.now == 1.0


def test_callback_scheduling_now_lands_at_current_time():
    sim = Simulator(fastpath=True)
    seen = _trace(sim)
    later = sim.timeout(1.0)
    later.name = "later"
    later.add_callback(lambda ev: setattr(sim.timeout(0.0), "name", "chained"))
    sim.run()
    assert seen == [(1.0, NORMAL, "later"), (1.0, NORMAL, "chained")]


def test_run_until_time_leaves_future_events_queued():
    sim = Simulator(fastpath=True)
    seen = _trace(sim)
    sim.timeout(0.0).name = "now"
    pending = sim.timeout(1.0)
    pending.name = "later"
    assert sim.run(until=0.5) == 0.5
    assert sim.now == 0.5
    assert [name for _, _, name in seen] == ["now"]
    assert not pending.processed
    sim.run()
    assert [name for _, _, name in seen] == ["now", "later"]


def test_run_until_event_stops_at_trigger():
    sim = Simulator(fastpath=True)
    done = sim.event("done")

    def proc():
        yield sim.timeout(0.25)
        done.succeed("finished")
        yield sim.timeout(10.0)

    sim.process(proc())
    assert sim.run(until=done) == "finished"
    assert sim.now == 0.25


def test_fast_and_reference_kernels_agree_on_random_schedules():
    def exercise(fastpath: bool) -> list[tuple[float, int, str]]:
        rng = random.Random(42)
        sim = Simulator(fastpath=fastpath)
        seen = _trace(sim)

        def churn(depth: int):
            for i in range(rng.randint(1, 3)):
                delay = rng.choice([0.0, 0.0, 0.0, rng.random()])
                ev = sim.timeout(delay)
                ev.name = f"t{depth}.{i}"
                if depth < 3:
                    ev.add_callback(lambda _ev, d=depth: churn(d + 1))
            if rng.random() < 0.3:
                urgent = sim.event(f"u{depth}")
                urgent._value = None
                sim._schedule(urgent, 0.0, URGENT)

        churn(0)
        sim.run()
        return seen

    assert exercise(True) == exercise(False)


# ---------------------------------------------------------------------------
# non-finite input guards
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fastpath", [True, False])
@pytest.mark.parametrize("delay", [float("nan"), float("inf"), -1.0])
def test_timeout_rejects_bad_delays(fastpath, delay):
    sim = Simulator(fastpath=fastpath)
    with pytest.raises(ValueError):
        sim.timeout(delay)


@pytest.mark.parametrize("delay", [float("nan"), float("inf"), -0.5])
def test_succeed_rejects_bad_delays(delay):
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.event("ev").succeed(delay=delay)
    with pytest.raises(ValueError):
        sim.event("ev").fail(RuntimeError("x"), delay=delay)


def test_bad_delay_does_not_corrupt_queue():
    sim = Simulator()
    seen = _trace(sim)
    with pytest.raises(ValueError):
        sim.timeout(float("nan"))
    sim.timeout(0.0).name = "ok"
    sim.run()
    assert [name for _, _, name in seen] == ["ok"]


# ---------------------------------------------------------------------------
# process-table compaction (unbounded retention regression)
# ---------------------------------------------------------------------------

def test_dead_processes_are_compacted_away():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.0)

    for _ in range(1000):
        sim.process(quick())
        sim.run()
    # Before compaction the table retained every process ever created
    # (1000 here); now it stays proportional to the live set.
    assert len(sim._processes) < 200


def test_live_processes_survive_compaction():
    sim = Simulator()
    gate = sim.event("gate")

    def waiter():
        yield gate
        return "woke"

    keeper = sim.process(waiter())

    def quick():
        yield sim.timeout(0.0)

    for _ in range(500):
        sim.process(quick())
    sim.run()
    assert keeper in sim._processes
    gate.succeed()
    sim.run()
    assert keeper.value == "woke"


# ---------------------------------------------------------------------------
# interrupt semantics
# ---------------------------------------------------------------------------

def test_interrupt_detaches_and_stale_fire_is_dropped():
    sim = Simulator()
    log: list[object] = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(intr.cause)
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(sleeper())
    sim.run(until=0.0)  # reach the first yield
    proc.interrupt("wake-up")
    result = sim.run(until=proc)
    assert log == ["wake-up"]
    assert result == "done"
    # The stale 10 s timeout still fires at t=10 but resumes nobody.
    assert sim.now == pytest.approx(1.0)
    sim.run()
    assert sim.now == pytest.approx(10.0)


def test_interrupt_before_first_resume_reaches_first_yield():
    sim = Simulator()
    log: list[str] = []

    def worker():
        log.append("started")
        try:
            yield sim.timeout(5.0)
        except Interrupt:
            log.append("interrupted")
            return "caught"
        return "uninterrupted"

    proc = sim.process(worker())
    proc.interrupt()  # before the loop ever ran
    sim.run(until=proc)
    # The bootstrap resume must still happen (the generator needs to
    # reach its first yield before Interrupt can be thrown into it).
    assert log == ["started", "interrupted"]
    assert proc.value == "caught"


def test_interrupt_finished_process_is_an_error():
    sim = Simulator()

    def instant():
        yield sim.timeout(0.0)

    proc = sim.process(instant())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_mass_interrupt_of_shared_event_waiters():
    # The failure-race shape that made list.remove O(waiters^2): many
    # processes parked on one event, all preempted in the same instant.
    sim = Simulator()
    gate = sim.event("gate")
    outcomes: list[str] = []

    def waiter(i: int):
        try:
            yield gate
            outcomes.append(f"woke{i}")
        except Interrupt:
            outcomes.append(f"intr{i}")

    procs = [sim.process(waiter(i)) for i in range(100)]
    sim.run(until=0.0)
    for proc in procs:
        proc.interrupt()
    sim.run()
    assert outcomes == [f"intr{i}" for i in range(100)]
    # The gate can still fire afterwards without resuming anyone twice.
    gate.succeed()
    sim.run()
    assert len(outcomes) == 100
