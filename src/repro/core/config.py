"""OMPC runtime configuration and calibrated overhead constants.

Every constant that shapes performance lives here, each annotated with
the paper observation it reproduces (Fig. 7a for the runtime-intrinsic
overheads, §6.1/§7 for the structural parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MICROSECOND, MILLISECOND


@dataclass(frozen=True)
class OMPCConfig:
    """Tunable parameters of the OMPC runtime.

    Structural parameters
    ---------------------
    head_threads
        OpenMP threads available on the head node.  LLVM's libomptarget
        blocks one thread per in-flight ``target nowait`` region (§7),
        so this bounds concurrent offloaded tasks — the root cause of
        the paper's scalability knee at 32–64 nodes.  The evaluation
        cluster exposes 48 hardware threads per CPU; 48 is the default.
    event_handlers
        Event-handler threads per node (§4.2, Fig. 3).
    num_comms
        Size of the duplicated-communicator pool used round-robin by
        event tag to exploit MPICH VCIs (§4.2; the paper compiles MPICH
        for up to 64 VCIs, §6.1).
    forwarding_enabled
        When True (default, the paper's design) buffer copies move
        worker-to-worker; when False every move routes through the head
        node (ablation B).
    broadcast_events
        Enable the §7 one-to-many broadcast-event extension (ablation E).

    Calibrated overheads (Fig. 7a)
    -------------------------------
    startup_time
        Process start → gate-thread creation.  Chosen with
        ``shutdown_time`` so the constant runtime overhead "fluctuates
        around 25 ms" with an ~4.7 ms interval after the first event.
    shutdown_time
        Gate-thread destruction → process end.
    first_event_interval
        The ~4.7 ms pause observed at the head node right after the
        first event (one-time lazy initialization of the event system).
    event_origin_overhead / event_handler_overhead
        Software time to create an origin event (collect arguments,
        pick tag/communicator) and to handle a destination event.
    task_creation_overhead
        Control-thread cost to outline and enqueue one task.
    schedule_unit_cost
        HEFT is O(e·p) (§4.4); total scheduling time is
        ``edges × nodes × schedule_unit_cost``.
    notification_bytes / completion_bytes / params_bytes
        Control-message sizes of the event protocol.
    """

    # -- structural -------------------------------------------------------
    #: Enable the unified observability layer (repro.obs): lifecycle
    #: spans, message flows, and utilization gauges collected on an
    #: Observer exposed as ``OMPCRunResult.obs``.  Instrumentation reads
    #: the clock but never advances it, so tracing is zero-cost in
    #: simulated time; off by default to keep untraced runs lean.
    trace: bool = False
    #: Enable the correctness subsystem (repro.analysis): static lint of
    #: the program, vector-clock race detection over actual buffer
    #: accesses, and MPI request/message auditing, reported as
    #: ``OMPCRunResult.analysis``.  Hooks are plain calls that never
    #: yield, so analysis has zero simulated-time cost and leaves
    #: makespan/network counters bit-identical; off by default.
    analysis: bool = False
    head_threads: int = 48
    event_handlers: int = 4
    num_comms: int = 8
    forwarding_enabled: bool = True
    broadcast_events: bool = False
    #: Write-detection mechanism (§7): ``"dependencies"`` trusts the
    #: ``depend`` clauses (the paper's current design, which forces every
    #: written buffer into the dependence list); ``"page_protect"``
    #: implements the proposed alternative — device allocations are
    #: write-protected and the runtime marks regions dirty by
    #: intercepting the first write to each page, at
    #: ``page_fault_overhead`` per touched page.
    write_detection: str = "dependencies"
    page_size: int = 4096
    page_fault_overhead: float = 0.3e-6
    #: Per-node device-memory capacity in bytes; 0 means unlimited (the
    #: historical behavior).  With a finite capacity, mapping more
    #: buffer bytes than fit on a node raises ``DeviceMemoryError`` —
    #: essential once several jobs partition one cluster and none may
    #: assume it owns infinite device memory.
    device_memory_bytes: float = 0.0
    #: Tiered-store eviction policy (repro.core.tiering).  ``"none"``
    #: keeps the PR 4 behavior — overflow is a fatal
    #: ``DeviceMemoryError``.  ``"lru"`` / ``"cost"`` turn overflow into
    #: graceful degradation: dirty sole copies spill device→host
    #: (write-behind), clean replicas are dropped, and evicted buffers
    #: are re-fetched read-through when needed again.  Requires a finite
    #: ``device_memory_bytes``.
    eviction_policy: str = "none"
    #: Read-through re-fetch retry budget: how many times a failed fetch
    #: of an evicted buffer is retried (exponential backoff) before the
    #: run gives up.  Fetches only fail under fault plans with a
    #: ``MemoryPressure`` arm carrying ``fetch_fail_prob > 0``.
    mem_fetch_retries: int = 4
    #: Base delay of the exponential backoff between fetch retries
    #: (doubled on every attempt).
    mem_fetch_backoff: float = 0.2 * MILLISECOND

    # -- transient-fault tolerance (repro.core.faultmodel extension) --------
    #: Head-side checkpoint period for written buffers; 0 disables
    #: checkpointing (the seed behavior: lineage-only recovery, which
    #: cannot rebuild in-place/INOUT producers).
    checkpoint_interval: float = 0.0
    #: Speculative re-dispatch threshold: a running target task whose
    #: elapsed time exceeds ``straggler_factor`` times its cost estimate
    #: gets a backup attempt on a second node (first finisher wins).
    #: 0 disables speculation.  Only tasks whose writes are all pure
    #: ``out`` dependences are eligible (double execution is idempotent).
    straggler_factor: float = 0.0
    #: Consecutive missed heartbeat windows before a node is *suspected*
    #: (not yet declared dead) — the K of the suspect→confirm protocol.
    heartbeat_suspect_windows: int = 2
    #: How long the head waits for a ping reply before confirming a
    #: suspect dead.
    heartbeat_ping_timeout: float = 1.0 * MILLISECOND

    # -- sharded control plane (repro.core.shard extension) -----------------
    #: Number of head shards the control plane is partitioned across.
    #: 1 (the default) is the paper's single-head runtime — the event
    #: stream stays bit-identical to the historical kernel.  With K > 1
    #: nodes ``0..K-1`` become shard-manager nodes, each owning a
    #: consistent-hash slice of the task graph with its own scheduler
    #: instance and ``head_threads`` dispatch slots (the §7 knee is per
    #: shard), and cross-shard dependences resolve through
    #: lease/subscription messages between managers.
    head_shards: int = 1
    #: Graph-partition policy of the shard directory: ``"hash"``
    #: (consistent hashing of the task's affinity key — the default) or
    #: ``"block"`` (contiguous blocks of affinity keys, minimizing
    #: cross-shard edges on neighbor-structured graphs).  Pluggable: the
    #: :class:`~repro.core.shard.ShardDirectory` also accepts a custom
    #: policy object directly.
    shard_policy: str = "hash"
    #: SWIM-style gossip membership (repro.core.gossip) instead of the
    #: O(N)-fan-in heartbeat ring.  Off by default (digest identity);
    #: sharded runs with failures require it — the ring's confirm
    #: machinery assumes a single head.
    gossip: bool = False
    #: Gossip protocol period (one probe per node per period).
    gossip_interval: float = 1.0 * MILLISECOND
    #: Indirect probers asked to verify an unresponsive probe target
    #: before it is suspected (the SWIM k).
    gossip_fanout: int = 3
    #: Maximum membership updates piggybacked on one probe/ack.
    gossip_piggyback: int = 8
    #: Root seed of the per-node probe-order streams.
    gossip_seed: int = 0

    # -- head failover (repro.core.headlog extension) -----------------------
    #: Standby workers replicating the head's commit log (nodes
    #: ``1..head_standbys``, clamped to the worker count).  0 disables
    #: replication entirely (the seed behavior: a head crash is fatal).
    head_standbys: int = 0
    #: Bounded replication lag: dispatch stalls once any live standby
    #: falls more than this many log records behind.
    replication_max_lag: int = 64
    #: Wire size of one metadata log record (completions, dispatches,
    #: directory updates); bootstrap/checkpoint records add payload bytes.
    log_record_bytes: float = 64.0
    #: Per-record cost for the elected head to replay its log replica
    #: into a fresh directory/task-set during failover.
    log_replay_unit_cost: float = 1.0 * MICROSECOND

    # -- calibrated overheads ------------------------------------------------
    startup_time: float = 12.0 * MILLISECOND
    shutdown_time: float = 8.0 * MILLISECOND
    first_event_interval: float = 4.7 * MILLISECOND
    event_origin_overhead: float = 20.0 * MICROSECOND
    event_handler_overhead: float = 20.0 * MICROSECOND
    task_creation_overhead: float = 2.0 * MICROSECOND
    schedule_unit_cost: float = 50.0e-9
    notification_bytes: float = 64.0
    completion_bytes: float = 32.0
    params_bytes: float = 256.0

    def __post_init__(self) -> None:
        if self.head_threads < 1:
            raise ValueError("head_threads must be >= 1")
        if self.event_handlers < 1:
            raise ValueError("event_handlers must be >= 1")
        if self.num_comms < 1:
            raise ValueError("num_comms must be >= 1")
        if self.write_detection not in ("dependencies", "page_protect"):
            raise ValueError(
                "write_detection must be 'dependencies' or 'page_protect'"
            )
        if self.page_size < 1:
            raise ValueError("page_size must be >= 1")
        if self.page_fault_overhead < 0:
            raise ValueError("page_fault_overhead must be >= 0")
        if self.device_memory_bytes < 0:
            raise ValueError("device_memory_bytes must be >= 0 (0 = unlimited)")
        if self.eviction_policy not in ("none", "lru", "cost"):
            raise ValueError(
                "eviction_policy must be 'none', 'lru', or 'cost'"
            )
        if self.mem_fetch_retries < 0:
            raise ValueError("mem_fetch_retries must be >= 0")
        if self.mem_fetch_backoff < 0:
            raise ValueError("mem_fetch_backoff must be >= 0")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0 (0 = off)")
        if self.straggler_factor < 0:
            raise ValueError("straggler_factor must be >= 0 (0 = off)")
        if self.heartbeat_suspect_windows < 1:
            raise ValueError("heartbeat_suspect_windows must be >= 1")
        if self.heartbeat_ping_timeout <= 0:
            raise ValueError("heartbeat_ping_timeout must be > 0")
        if self.head_shards < 1:
            raise ValueError("head_shards must be >= 1")
        if self.shard_policy not in ("hash", "block"):
            raise ValueError("shard_policy must be 'hash' or 'block'")
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be > 0")
        if self.gossip_fanout < 0:
            raise ValueError("gossip_fanout must be >= 0")
        if self.gossip_piggyback < 1:
            raise ValueError("gossip_piggyback must be >= 1")
        if self.head_standbys < 0:
            raise ValueError("head_standbys must be >= 0 (0 = off)")
        if self.replication_max_lag < 1:
            raise ValueError("replication_max_lag must be >= 1")
        if self.log_record_bytes < 0:
            raise ValueError("log_record_bytes must be >= 0")
        if self.log_replay_unit_cost < 0:
            raise ValueError("log_replay_unit_cost must be >= 0")
        for field_name in (
            "startup_time",
            "shutdown_time",
            "first_event_interval",
            "event_origin_overhead",
            "event_handler_overhead",
            "task_creation_overhead",
            "schedule_unit_cost",
            "notification_bytes",
            "completion_bytes",
            "params_bytes",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
