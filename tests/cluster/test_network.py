"""Tests for the interconnect model (NICs, VCIs, transfers)."""

import pytest

from repro.cluster import Network, NetworkSpec
from repro.sim import Simulator
from repro.util.units import Gbps, MICROSECOND, MB


@pytest.fixture
def sim():
    return Simulator()


class TestNetworkSpec:
    def test_defaults_model_paper_fabric(self):
        spec = NetworkSpec()
        assert spec.bandwidth == Gbps(100.0)
        assert spec.vcis == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency": -1.0},
            {"bandwidth": 0.0},
            {"vcis": 0},
            {"local_bandwidth": -5.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkSpec(**kwargs)

    def test_wire_time(self):
        spec = NetworkSpec(latency=1e-6, bandwidth=1e9, vcis=1)
        assert spec.wire_time(1e9) == pytest.approx(1.0 + 1e-6)
        with pytest.raises(ValueError):
            spec.wire_time(-1)


class TestTransfers:
    def test_transfer_time_formula(self, sim):
        net = Network(sim, 2, NetworkSpec(latency=1e-6, bandwidth=1e9))
        assert net.transfer_time(0, 1, 1e6) == pytest.approx(1e-3 + 1e-6)

    def test_transfer_advances_clock(self, sim):
        net = Network(sim, 2, NetworkSpec(latency=1e-6, bandwidth=1e9, vcis=4))

        def proc():
            yield from net.transfer(0, 1, 1e6)
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == pytest.approx(1e-3 + 1e-6)

    def test_local_transfer_uses_memcpy_path(self, sim):
        spec = NetworkSpec(
            latency=1e-6, bandwidth=1e9, local_latency=1e-7, local_bandwidth=1e10
        )
        net = Network(sim, 2, spec)

        def proc():
            yield from net.transfer(1, 1, 1e6)
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == pytest.approx(1e-7 + 1e-4)
        # Local copies bypass the NICs entirely.
        assert net.total_messages == 0

    def test_vci_contention_serializes_flows(self, sim):
        # 1 VCI: two concurrent 1 MB transfers on the same link serialize.
        spec = NetworkSpec(latency=0.0, bandwidth=1e6, vcis=1)
        net = Network(sim, 2, spec)
        done = []

        def proc(pid):
            yield from net.transfer(0, 1, 1 * MB)
            done.append((pid, sim.now))

        sim.process(proc(0))
        sim.process(proc(1))
        sim.run()
        assert done == [(0, pytest.approx(1.0)), (1, pytest.approx(2.0))]

    def test_more_vcis_share_line_rate(self, sim):
        spec = NetworkSpec(latency=0.0, bandwidth=1e6, vcis=2)
        net = Network(sim, 2, spec)
        done = []

        def proc(pid):
            yield from net.transfer(0, 1, 1 * MB)
            done.append((pid, sim.now))

        sim.process(proc(0))
        sim.process(proc(1))
        sim.run()
        # Two channels admit both flows immediately, but they share the
        # line rate fairly: each progresses at B/2, both finish at t=2.
        assert done == [(0, pytest.approx(2.0)), (1, pytest.approx(2.0))]

    def test_vcis_remove_head_of_line_blocking(self, sim):
        # A huge transfer and a tiny one: with 1 VCI the tiny transfer
        # waits for the whole elephant; with 2 VCIs it shares the link
        # and finishes orders of magnitude sooner.
        def run_with(vcis):
            s = Simulator()
            net = Network(s, 2, NetworkSpec(latency=0.0, bandwidth=1e6, vcis=vcis))
            finished = {}

            def big():
                yield from net.transfer(0, 1, 10 * MB)
                finished["big"] = s.now

            def small():
                yield s.timeout(0.1)
                yield from net.transfer(0, 1, 0.01 * MB)
                finished["small"] = s.now

            s.process(big())
            s.process(small())
            s.run()
            return finished

        one = run_with(1)
        many = run_with(2)
        assert one["small"] == pytest.approx(10.0 + 0.01)
        assert many["small"] < 0.5
        # Aggregate bandwidth is conserved: the elephant still needs
        # ~10s of line time in both configurations.
        assert many["big"] == pytest.approx(one["big"], rel=0.01)

    def test_disjoint_pairs_do_not_contend(self, sim):
        spec = NetworkSpec(latency=0.0, bandwidth=1e6, vcis=1)
        net = Network(sim, 4, spec)
        done = []

        def proc(src, dst):
            yield from net.transfer(src, dst, 1 * MB)
            done.append(sim.now)

        sim.process(proc(0, 1))
        sim.process(proc(2, 3))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_byte_accounting(self, sim):
        net = Network(sim, 3, NetworkSpec())

        def proc():
            yield from net.transfer(0, 1, 1000)
            yield from net.transfer(0, 2, 500)

        sim.process(proc())
        sim.run()
        assert net.total_bytes == 1500
        assert net.total_messages == 2
        assert net.nics[0].bytes_sent == 1500
        assert net.nics[1].bytes_received == 1000
        assert net.nics[2].bytes_received == 500

    def test_bad_node_ids_rejected(self, sim):
        net = Network(sim, 2)
        with pytest.raises(ValueError):
            net.transfer_time(0, 5, 100)
        with pytest.raises(ValueError):
            net.transfer_time(-1, 0, 100)

    def test_opposed_transfers_full_duplex(self, sim):
        # A->B and B->A with 1 VCI each direction: full duplex means the
        # two directions neither deadlock nor contend.
        spec = NetworkSpec(latency=0.0, bandwidth=1e6, vcis=1)
        net = Network(sim, 2, spec)
        done = []

        def proc(src, dst):
            yield from net.transfer(src, dst, 1 * MB)
            done.append(sim.now)

        sim.process(proc(0, 1))
        sim.process(proc(1, 0))
        sim.run(check_deadlock=True)
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_incast_shares_receiver_line_rate(self, sim):
        # Two senders into one receiver: the receiver's RX line rate is
        # the bottleneck, so each flow gets B/2.
        spec = NetworkSpec(latency=0.0, bandwidth=1e6, vcis=8)
        net = Network(sim, 3, spec)
        done = []

        def proc(src):
            yield from net.transfer(src, 2, 1 * MB)
            done.append(sim.now)

        sim.process(proc(0))
        sim.process(proc(1))
        sim.run()
        assert done == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_early_finisher_speeds_up_survivor(self, sim):
        # A short and a long flow share the link; when the short one
        # drains, the survivor reclaims the full line rate.
        spec = NetworkSpec(latency=0.0, bandwidth=1e6, vcis=8)
        net = Network(sim, 2, spec)
        done = {}

        def proc(name, nbytes):
            yield from net.transfer(0, 1, nbytes)
            done[name] = sim.now

        sim.process(proc("short", 0.5 * MB))
        sim.process(proc("long", 1.5 * MB))
        sim.run()
        # Shared until t=1 (0.5MB each moved); short done at t=1; long
        # has 1.0MB left at full rate -> finishes at t=2.
        assert done["short"] == pytest.approx(1.0)
        assert done["long"] == pytest.approx(2.0)
