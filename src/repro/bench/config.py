"""Experiment configuration: a YAML-subset parser plus typed configs.

PyYAML is not a dependency, so OMPC Bench ships a small parser covering
the subset experiment files actually use: nested mappings by two-space
indentation, block lists (``- item``), inline lists (``[a, b]``),
scalars (int/float/bool/null/string), and ``#`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class YamlError(ValueError):
    """Malformed input for the YAML subset."""


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part) for part in inner.split(",")]
    if (text.startswith('"') and text.endswith('"')) or (
        text.startswith("'") and text.endswith("'")
    ):
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~", ""):
        return None
    if lowered == ".nan":
        return float("nan")
    if lowered in (".inf", "+.inf"):
        return float("inf")
    if lowered == "-.inf":
        return float("-inf")
    try:
        return int(text)
    except ValueError:
        pass
    # float() also accepts bare words like "nan"/"Infinity", but YAML
    # spells those ".nan"/".inf" (handled above) — keep words as strings.
    if any(ch.isdigit() for ch in text):
        try:
            return float(text)
        except ValueError:
            pass
    return text


def _strip_comment(line: str) -> str:
    # Comments start at an unquoted '#'.
    quote: str | None = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch == "#":
            return line[:i]
    return line


def parse_yaml(text: str) -> Any:
    """Parse the YAML subset; returns dicts/lists/scalars."""
    lines: list[tuple[int, str]] = []
    for raw in text.splitlines():
        line = _strip_comment(raw).rstrip()
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip(" "))
        if indent % 2 != 0:
            raise YamlError(f"odd indentation: {raw!r}")
        lines.append((indent, line.strip()))
    value, consumed = _parse_block(lines, 0, 0)
    if consumed != len(lines):
        raise YamlError(f"trailing content at line {consumed}")
    return value


def _parse_block(lines: list[tuple[int, str]], pos: int, indent: int) -> tuple[Any, int]:
    if pos >= len(lines):
        return None, pos
    first_indent, first = lines[pos]
    if first_indent != indent:
        raise YamlError(f"unexpected indentation at {first!r}")
    if first.startswith("- "):
        return _parse_list(lines, pos, indent)
    return _parse_mapping(lines, pos, indent)


def _parse_list(lines, pos, indent):
    items = []
    while pos < len(lines):
        line_indent, content = lines[pos]
        if line_indent < indent:
            break
        if line_indent != indent or not content.startswith("- "):
            raise YamlError(f"bad list item: {content!r}")
        body = content[2:].strip()
        if ":" in body and not body.startswith("["):
            # Inline mapping entry opening a nested mapping.
            key, _, rest = body.partition(":")
            entry: dict[str, Any] = {}
            if rest.strip():
                entry[key.strip()] = _parse_scalar(rest)
                pos += 1
            else:
                pos += 1
                sub, pos = _parse_block(lines, pos, indent + 2)
                entry[key.strip()] = sub
            # Continuation keys of the same mapping, indented under '-'.
            while pos < len(lines) and lines[pos][0] == indent + 2 and ":" in lines[pos][1]:
                k, _, v = lines[pos][1].partition(":")
                if v.strip():
                    entry[k.strip()] = _parse_scalar(v)
                    pos += 1
                else:
                    pos += 1
                    sub, pos = _parse_block(lines, pos, indent + 4)
                    entry[k.strip()] = sub
            items.append(entry)
        else:
            items.append(_parse_scalar(body))
            pos += 1
    return items, pos


def _parse_mapping(lines, pos, indent):
    mapping: dict[str, Any] = {}
    while pos < len(lines):
        line_indent, content = lines[pos]
        if line_indent < indent:
            break
        if line_indent != indent:
            raise YamlError(f"unexpected indent at {content!r}")
        if content.startswith("- "):
            raise YamlError(f"list item inside mapping: {content!r}")
        if ":" not in content:
            raise YamlError(f"expected 'key: value': {content!r}")
        key, _, rest = content.partition(":")
        key = key.strip()
        if key in mapping:
            raise YamlError(f"duplicate key {key!r}")
        if rest.strip():
            mapping[key] = _parse_scalar(rest)
            pos += 1
        else:
            pos += 1
            if pos < len(lines) and lines[pos][0] > indent:
                sub, pos = _parse_block(lines, pos, lines[pos][0])
                mapping[key] = sub
            else:
                mapping[key] = None
    return mapping, pos


@dataclass(frozen=True)
class ExperimentConfig:
    """One OMPC Bench experiment: a parameter grid over one benchmark.

    ``nodes``/``ccrs``/``patterns`` are swept as a cartesian product;
    ``width`` may be an integer or the string ``"2n"`` (Fig. 5's
    node-proportional width).
    """

    name: str
    runtimes: tuple[str, ...] = ("ompc", "charmpp", "starpu", "mpi")
    patterns: tuple[str, ...] = ("trivial", "stencil_1d", "fft", "tree")
    nodes: tuple[int, ...] = (4,)
    width: int | str = 16
    steps: int = 16
    iterations: int = 10_000_000
    ccrs: tuple[float, ...] = (1.0,)
    repetitions: int = 1

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if isinstance(self.width, str) and self.width != "2n":
            raise ValueError("width must be an int or the string '2n'")
        if self.steps < 1 or self.iterations < 0:
            raise ValueError("steps must be >= 1 and iterations >= 0")

    def width_for(self, num_nodes: int) -> int:
        if self.width == "2n":
            return 2 * num_nodes
        return int(self.width)

    @classmethod
    def from_yaml(cls, text: str) -> "ExperimentConfig":
        data = parse_yaml(text)
        if not isinstance(data, dict):
            raise YamlError("experiment config must be a mapping")
        known = {
            "name", "runtimes", "patterns", "nodes", "width", "steps",
            "iterations", "ccrs", "repetitions",
        }
        unknown = set(data) - known
        if unknown:
            raise YamlError(f"unknown config keys: {sorted(unknown)}")
        if "name" not in data:
            raise YamlError("config requires a 'name'")
        kwargs: dict[str, Any] = {"name": data["name"]}
        for key in ("runtimes", "patterns", "nodes", "ccrs"):
            if key in data and data[key] is not None:
                value = data[key]
                if not isinstance(value, list):
                    value = [value]
                kwargs[key] = tuple(value)
        for key in ("width", "steps", "iterations", "repetitions"):
            if key in data and data[key] is not None:
                kwargs[key] = data[key]
        return cls(**kwargs)
