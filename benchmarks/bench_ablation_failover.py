"""Head-failover ablation: standby count x head crash.

The transient ablation (``bench_ablation_transient``) prices faults a
run rides out; this one prices losing the *control plane*.  The sweep
answers three questions in simulated seconds: what does streaming the
commit log to N standbys cost when nothing fails (the replication tax),
how long does a head crash take to detect/elect/replay through
(failover latency), and what does the whole interruption add to the
makespan?  With 0 standbys the head crash is fatal — the row exists to
show what the tax buys.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import (
    FaultTolerantRuntime,
    NodeFailure,
    OMPCConfig,
    RecoveryError,
)
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out

#: Crash offset from runtime startup: mid-shot-execution (shots run
#: concurrently across each node's cores, so the work window is short).
CRASH_AT = 0.03


def shots_program(num_shots: int = 8, cost: float = 0.04):
    prog = OmpProgram("shots")
    model = np.arange(256.0)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    out_bufs = []
    for i in range(num_shots):
        out = np.zeros(256)
        buf = prog.buffer(out.nbytes, data=out, name=f"out{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o: np.copyto(o, m * 2.0),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=cost,
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog


def run_once(standbys: int, crash: bool):
    cfg = OMPCConfig(head_standbys=standbys)
    rt = FaultTolerantRuntime(ClusterSpec(num_nodes=6), cfg)
    failures = [NodeFailure(time=CRASH_AT, node=0)] if crash else []
    return rt.run(shots_program(), failures=failures)


class TestAblationFailover:
    def test_bench_failover_latency_reported(self, benchmark):
        def sweep():
            return {n: run_once(n, crash=True) for n in (1, 2, 3)}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        for n, res in results.items():
            assert res.head_failovers == 1
            assert res.final_head != 0
            (fo,) = res.failovers
            # The simulated costs the ablation reports must be real
            # (election is free when the sole candidate coordinates
            # its own election, so only its lower bound is hard).
            assert fo.detection_time > 0
            assert fo.election_time >= 0
            assert fo.recovery_time > fo.election_time
            assert fo.replayed_records > 0

    def test_bench_replication_tax_bounded(self, benchmark):
        def sweep():
            return {n: run_once(n, crash=False) for n in (0, 1, 3)}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        base = results[0]
        for n in (1, 3):
            res = results[n]
            assert res.head_failovers == 0
            assert res.replication_bytes > 0
            # Streaming the log is asynchronous: a modest tax, not a
            # serialization of the dispatch path.
            assert res.makespan < base.makespan * 1.5

    def test_bench_no_standby_crash_is_fatal(self, benchmark):
        def attempt():
            try:
                run_once(0, crash=True)
            except RecoveryError:
                return "fatal"
            return "survived"

        assert benchmark.pedantic(attempt, rounds=1, iterations=1) == "fatal"


def main() -> None:
    rows = []
    for n in (0, 1, 2, 3):
        quiet = run_once(n, crash=False)
        try:
            res = run_once(n, crash=True)
        except RecoveryError:
            rows.append([
                n, f"{quiet.makespan:.6f}",
                f"{quiet.replication_bytes / 1024:.1f}",
                "—", "—", "—", "—", "fatal",
            ])
            continue
        (fo,) = res.failovers
        rows.append([
            n, f"{quiet.makespan:.6f}",
            f"{quiet.replication_bytes / 1024:.1f}",
            f"{fo.detection_time * 1e3:.3f}",
            f"{fo.election_time * 1e3:.3f}",
            f"{fo.recovery_time * 1e3:.3f}",
            fo.replayed_records,
            f"{res.makespan:.6f}",
        ])
    print(
        format_table(
            [
                "standbys", "quiet makespan (s)", "log KiB",
                "detect (ms)", "elect (ms)", "recover (ms)",
                "replayed", "crash makespan (s)",
            ],
            rows,
            title=(
                "Ablation H — head failover: standby count x head crash "
                f"at t={CRASH_AT}s (8 shots, 5 workers)"
            ),
        )
    )


if __name__ == "__main__":
    main()
