"""Tests for the declarative transient-fault model."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec
from repro.core.faultmodel import (
    FaultPlan,
    LinkDegradation,
    LinkLoss,
    NodeHang,
    NodeStall,
)


class TestRuleValidation:
    def test_loss_probability_bounds(self):
        LinkLoss(probability=0.0)
        LinkLoss(probability=1.0)
        with pytest.raises(ValueError):
            LinkLoss(probability=-0.1)
        with pytest.raises(ValueError):
            LinkLoss(probability=1.1)

    def test_degradation_window(self):
        with pytest.raises(ValueError):
            LinkDegradation(start=-1.0, end=1.0)
        with pytest.raises(ValueError):
            LinkDegradation(start=1.0, end=1.0)
        with pytest.raises(ValueError):
            LinkDegradation(start=0.0, end=1.0, latency_factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(start=0.0, end=1.0, bandwidth_factor=-1.0)

    def test_stall_needs_positive_factor(self):
        with pytest.raises(ValueError):
            NodeStall(node=1, start=0.0, end=1.0, factor=0.0)
        with pytest.raises(ValueError):
            NodeStall(node=1, start=2.0, end=1.0, factor=0.5)

    def test_hang_needs_positive_duration(self):
        with pytest.raises(ValueError):
            NodeHang(node=1, start=0.0, duration=0.0)
        assert NodeHang(node=1, start=0.5, duration=0.25).end == 0.75


class TestPlan:
    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(losses=[LinkLoss(probability=0.1)])
        assert isinstance(plan.losses, tuple)

    def test_lossy_property(self):
        assert not FaultPlan().lossy
        assert not FaultPlan(losses=[LinkLoss(probability=0.0)]).lossy
        assert FaultPlan(losses=[LinkLoss(probability=0.01)]).lossy

    def test_install_wires_cluster_and_network(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        assert cluster.faults is None
        assert cluster.network.faults is None
        active = FaultPlan(losses=[LinkLoss(probability=0.5)]).install(cluster)
        assert cluster.faults is active
        assert cluster.network.faults is active


class TestLossDraws:
    def make(self, *losses, seed=0):
        cluster = Cluster(ClusterSpec(num_nodes=4))
        return FaultPlan(seed=seed, losses=list(losses)).install(cluster)

    def test_first_matching_rule_wins(self):
        active = self.make(
            LinkLoss(probability=0.9, src=1, dst=2),
            LinkLoss(probability=0.1),
        )
        assert active.loss_probability(1, 2) == 0.9
        assert active.loss_probability(2, 1) == 0.1

    def test_drops_deterministic_per_seed(self):
        a = self.make(LinkLoss(probability=0.5), seed=42)
        b = self.make(LinkLoss(probability=0.5), seed=42)
        seq_a = [a.drops(1, 2) for _ in range(64)]
        seq_b = [b.drops(1, 2) for _ in range(64)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        assert a.dropped_messages == sum(seq_a)

    def test_links_have_independent_streams(self):
        a = self.make(LinkLoss(probability=0.5), seed=7)
        b = self.make(LinkLoss(probability=0.5), seed=7)
        # Interleaving traffic on another link must not perturb 1->2.
        seq_a = [a.drops(1, 2) for _ in range(32)]
        seq_b = []
        for _ in range(32):
            b.drops(2, 3)
            seq_b.append(b.drops(1, 2))
        assert seq_a == seq_b

    def test_zero_probability_never_draws(self):
        active = self.make(LinkLoss(probability=0.0))
        assert not any(active.drops(1, 2) for _ in range(16))
        assert active.dropped_messages == 0


class TestDegradation:
    def test_factors_compose_inside_window_only(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        active = FaultPlan(degradations=[
            LinkDegradation(start=1.0, end=2.0, latency_factor=4.0,
                            bandwidth_factor=0.5),
            LinkDegradation(start=1.5, end=3.0, latency_factor=2.0, dst=2),
        ]).install(cluster)
        assert active.latency_factor(1, 2, 0.5) == 1.0
        assert active.latency_factor(1, 2, 1.2) == 4.0
        assert active.latency_factor(1, 2, 1.7) == 8.0  # windows multiply
        assert active.latency_factor(1, 1, 1.7) == 4.0  # dst filter
        assert active.bandwidth_factor(1, 2, 1.2) == 0.5
        assert active.edge_times() == [1.0, 1.5, 2.0, 3.0]

    def test_degraded_latency_charged_on_transfer(self):
        net = NetworkSpec(latency=1e-3, bandwidth=1e12)
        slow = Cluster(ClusterSpec(num_nodes=3, network=net))
        FaultPlan(degradations=[
            LinkDegradation(start=0.0, end=10.0, latency_factor=5.0)
        ]).install(slow)

        def move():
            yield from slow.network.transfer(1, 2, 0)

        p = slow.sim.process(move())
        slow.sim.run(until=p)
        assert slow.sim.now == pytest.approx(5e-3)


class TestHangsAndStalls:
    def make(self, **kwargs):
        cluster = Cluster(ClusterSpec(num_nodes=4))
        return FaultPlan(**kwargs).install(cluster), cluster

    def test_compute_rate(self):
        active, _ = self.make(
            stalls=[NodeStall(node=1, start=1.0, end=2.0, factor=0.25)],
            hangs=[NodeHang(node=2, start=0.5, duration=0.5)],
        )
        assert active.compute_rate(1, 0.5) == 1.0
        assert active.compute_rate(1, 1.5) == 0.25
        assert active.compute_rate(2, 0.75) == 0.0
        assert active.compute_rate(2, 1.5) == 1.0

    def test_stretched_integrates_stall_window(self):
        active, _ = self.make(
            stalls=[NodeStall(node=1, start=1.0, end=2.0, factor=0.5)]
        )
        # 1s of work starting at 0.5: half done by t=1, the rest at half
        # speed finishes at t=2 — total wall time 1.5s.
        assert active.stretched(1, 0.5, 1.0) == pytest.approx(1.5)
        # Unaffected node and unaffected window.
        assert active.stretched(2, 0.5, 1.0) == pytest.approx(1.0)
        assert active.stretched(1, 5.0, 1.0) == pytest.approx(1.0)

    def test_stretched_pauses_through_hang(self):
        active, _ = self.make(hangs=[NodeHang(node=1, start=0.2, duration=0.5)])
        # 1s of work from t=0: 0.2s runs, 0.5s frozen, 0.8s remainder.
        assert active.stretched(1, 0.0, 1.0) == pytest.approx(1.5)

    def test_hold_until_covers_both_endpoints(self):
        active, _ = self.make(hangs=[NodeHang(node=2, start=0.1, duration=0.4)])
        assert active.hold_until(1, 3, 0.2) == 0.2
        assert active.hold_until(1, 2, 0.2) == pytest.approx(0.5)
        assert active.hold_until(2, 1, 0.2) == pytest.approx(0.5)
        assert active.hold_until(2, 1, 0.6) == 0.6

    def test_hang_holds_transfer_in_fabric(self):
        net = NetworkSpec(latency=0.0, bandwidth=1e12)
        cluster = Cluster(ClusterSpec(num_nodes=3, network=net))
        FaultPlan(hangs=[NodeHang(node=2, start=0.0, duration=0.3)]).install(
            cluster
        )

        def move():
            yield from cluster.network.transfer(1, 2, 64)

        p = cluster.sim.process(move())
        cluster.sim.run(until=p)
        assert cluster.sim.now == pytest.approx(0.3, abs=1e-6)
