"""Quickstart: Listing 1 of the paper, from one node to a cluster.

The paper's central claim is programming scalability: the same OpenMP
program runs on a single machine's cores (regular OpenMP runtime) or
across a cluster (OMPC), unchanged.  This example builds Listing 1 —

    #pragma omp target enter data map(to: A[:N]) nowait depend(out: *A)
    #pragma omp target nowait depend(inout: *A)
        foo(A)
    #pragma omp target nowait depend(inout: *A)
        bar(A)
    #pragma omp target exit data map(release: A[:N]) nowait depend(out: *A)

— then executes it first on the host runtime and then on a simulated
4-node cluster through the full OMPC stack (HEFT scheduling, MPI event
system, distributed data manager).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.host import HostRuntime
from repro.omp.task import depend_inout


def build_listing1(n: int = 1_000_000) -> tuple[OmpProgram, np.ndarray]:
    prog = OmpProgram("listing1")
    data = np.ones(n)

    A = prog.buffer(nbytes=data.nbytes, data=data, name="A")
    prog.target_enter_data(A)
    prog.target(
        fn=lambda a: np.multiply(a, 2.0, out=a),       # foo: A *= 2
        depend=[depend_inout(A)],
        cost=0.050,                                     # 50 ms of compute
        name="foo",
    )
    prog.target(
        fn=lambda a: np.add(a, 1.0, out=a),             # bar: A += 1
        depend=[depend_inout(A)],
        cost=0.050,
        name="bar",
    )
    prog.target_exit_data(A)
    return prog, data


def main() -> None:
    # --- 1. prototype on a single node (plain OpenMP semantics) -------
    prog, data = build_listing1()
    host = HostRuntime(num_threads=8).run(prog)
    print(f"host runtime : makespan {host.makespan * 1e3:7.2f} ms "
          f"({host.num_tasks} tasks)")
    assert np.all(data == 3.0)  # foo then bar: 1*2 + 1

    # --- 2. the same program on a cluster (OMPC) ----------------------
    prog, data = build_listing1()
    runtime = OMPCRuntime(ClusterSpec(num_nodes=4))
    result = runtime.run(prog)
    print(f"OMPC cluster : makespan {result.makespan * 1e3:7.2f} ms "
          f"(startup {result.startup_time * 1e3:.1f} ms, "
          f"shutdown {result.shutdown_time * 1e3:.1f} ms)")
    assert np.all(data == 3.0)

    print("\ntask placement (node 0 is the head):")
    for task_id, node in sorted(result.schedule.assignment.items()):
        print(f"  task {task_id} -> node {node}")
    print("\nevent counters:")
    for key, value in sorted(result.counters.items()):
        print(f"  {key}: {value:.0f}")
    print("\nsame program, same results — one node or a cluster.")


if __name__ == "__main__":
    main()
