"""Cluster assembly: one simulator + nodes + network + trace.

A :class:`Cluster` is the complete simulated machine handed to a
runtime.  By convention (matching the paper's Fig. 1) node 0 is the
*head node* and nodes 1..N are *worker nodes* when the OMPC runtime is
in charge; the comparator runtimes treat all nodes as peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import Network, NetworkSpec
from repro.cluster.node import Node, NodeSpec
from repro.cluster.trace import TraceRecorder
from repro.analysis.hooks import NULL_ANALYSIS
from repro.obs.observer import NULL_OBSERVER
from repro.sim.core import Simulator


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a whole cluster.

    ``num_nodes`` counts every node, head included.  ``node`` applies to
    all nodes unless ``node_overrides`` maps specific node ids to their
    own spec (used by heterogeneity tests for HEFT).
    """

    num_nodes: int = 2
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    node_overrides: tuple = ()  # tuple of (node_id, NodeSpec)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        for node_id, _spec in self.node_overrides:
            if not 0 <= node_id < self.num_nodes:
                raise ValueError(f"override for nonexistent node {node_id}")

    def spec_for(self, node_id: int) -> NodeSpec:
        for nid, spec in self.node_overrides:
            if nid == node_id:
                return spec
        return self.node


class Cluster:
    """A live simulated cluster."""

    def __init__(self, spec: ClusterSpec | None = None, sim: Simulator | None = None):
        self.spec = spec or ClusterSpec()
        self.sim = sim or Simulator()
        self.nodes = [
            Node(self.sim, i, self.spec.spec_for(i))
            for i in range(self.spec.num_nodes)
        ]
        self.network = Network(self.sim, self.spec.num_nodes, self.spec.network)
        self.trace = TraceRecorder(self.sim)
        #: Observability sink (see :mod:`repro.obs`): the no-op observer
        #: unless a runtime installs a recording one via
        #: :meth:`install_observer`.
        self.obs = NULL_OBSERVER
        #: Correctness-analysis sink (see :mod:`repro.analysis`): the
        #: no-op analysis unless a runtime installs a recording one via
        #: :meth:`install_analysis`.
        self.analysis = NULL_ANALYSIS
        #: Transient-fault state installed by ``FaultPlan.install`` (see
        #: :mod:`repro.core.faultmodel`); ``None`` means a clean machine.
        self.faults = None

    def install_observer(self, obs) -> None:
        """Attach an :class:`~repro.obs.observer.Observer` to every layer.

        Must run before MPI worlds or runtimes are built on this cluster
        — they capture ``cluster.obs`` at construction time.
        """
        self.obs = obs
        self.network.obs = obs

    def install_analysis(self, analysis) -> None:
        """Attach a :class:`~repro.analysis.hooks.Analysis`.

        Like :meth:`install_observer`, must run before MPI worlds or
        event systems are built — they capture ``cluster.analysis`` at
        construction time.
        """
        self.analysis = analysis

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    @property
    def head(self) -> Node:
        """The head node (node 0) in head/worker deployments."""
        return self.nodes[0]

    @property
    def workers(self) -> list[Node]:
        """All nodes except the head."""
        return self.nodes[1:]

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster nodes={self.num_nodes}>"
