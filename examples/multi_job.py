"""Multi-tenant execution: many OMPC applications, one cluster.

The paper runs one application per cluster; `repro.jobs` adds the
workload-manager layer above it.  This example submits a small mixed
stream of Task Bench jobs from three tenants to a 10-node machine
(node 0 is the login/manager node, nodes 1-9 are the worker pool),
runs the same stream under FIFO and EASY backfill, and prints both
schedules — watch the small jobs jump the queue under backfill while
the wide job's reservation holds.

A second scenario shows the fault path: a job whose partition head
dies mid-run is requeued onto fresh nodes by the manager (the dead
node is retired from the pool), while a bystander job on a disjoint
partition never notices.

Run:  python examples/multi_job.py
"""

from repro.cluster import ClusterSpec
from repro.cluster.machine import Cluster
from repro.core import NodeFailure
from repro.jobs import JobManager, JobSpec, format_jobs_report
from repro.jobs.workload import _taskbench_job
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program


def mixed_workload():
    """Three tenants; the wide job blocks the queue head mid-stream."""
    return [
        # bob's job grabs 5 of the 9 workers first ...
        (0.000, _taskbench_job("bob-first", "bob", nodes=5,
                               width=4, steps=4, task_seconds=0.05)),
        # ... so alice's 8-node job must wait at the queue head, leaving
        # 4 nodes idle that only backfill is allowed to use.
        (0.002, _taskbench_job("alice-wide", "alice", nodes=8,
                               width=7, steps=4, task_seconds=0.04)),
        (0.004, _taskbench_job("carol-narrow", "carol", nodes=2,
                               width=1, steps=3, task_seconds=0.02)),
        (0.006, _taskbench_job("bob-second", "bob", nodes=3,
                               width=2, steps=3, task_seconds=0.02)),
    ]


def compare_policies():
    for policy in ("fifo", "backfill"):
        manager = JobManager(
            Cluster(ClusterSpec(num_nodes=10)), policy=policy
        )
        report = manager.run(mixed_workload())
        print(format_jobs_report(report))
        print()


def crash_and_requeue():
    spec = TaskBenchSpec(
        width=3, steps=9, pattern=Pattern.STENCIL_1D,
        kernel=KernelSpec(iterations=10_000_000),  # 50 ms tasks
    )
    doomed = JobSpec(
        name="doomed-head",
        program=lambda: build_omp_program(spec),
        nodes=4,
        tenant="alice",
        fault_tolerant=True,
        # Virtual node 0 is this job's private head; killing it is
        # unrecoverable in-place (no standbys), so the manager requeues
        # the job on fresh nodes and retires the dead one.
        failures=(NodeFailure(time=0.005, node=0),),
    )
    bystander = _taskbench_job("bystander", "bob", nodes=3,
                               width=2, steps=3, task_seconds=0.01)

    manager = JobManager(Cluster(ClusterSpec(num_nodes=10)))
    report = manager.run([(0.0, doomed), (0.0, bystander)])
    print(format_jobs_report(report))
    retired = sorted(manager.pool._retired)
    print(f"retired physical nodes: {retired}")

    doomed_job = manager.jobs[0]
    assert doomed_job.state.value == "completed", doomed_job.error
    assert doomed_job.requeues == 1 and doomed_job.attempts == 2
    assert manager.jobs[1].state.value == "completed"
    assert retired, "the dead head's physical node must leave the pool"


def main():
    print("== same stream, two admission policies ==\n")
    compare_policies()
    print("== head crash -> retire node, requeue on fresh ones ==\n")
    crash_and_requeue()
    print("\nok")


if __name__ == "__main__":
    main()
