"""Tests for the Data Management module's coherency rules (§4.3)."""

import pytest

from repro.core.datamanager import HOST, DataManager, Move
from repro.omp.task import Buffer, Task, TaskKind, depend_in, depend_inout, depend_out


def target(task_id, *deps):
    return Task(task_id=task_id, kind=TaskKind.TARGET, deps=tuple(deps))


class TestInitialState:
    def test_buffers_start_on_host(self):
        dm = DataManager()
        buf = Buffer(100)
        assert dm.locations(buf) == {HOST}
        assert dm.latest(buf) == HOST
        assert dm.is_resident(buf, HOST)
        assert not dm.is_resident(buf, 1)


class TestEnterData:
    def test_sent_to_first_user(self):
        dm = DataManager()
        buf = Buffer(100)
        moves = dm.plan_enter_data(buf, 2)
        assert moves == [Move(buf, HOST, 2)]
        for m in moves:
            dm.commit_move(m)
        dm.commit_enter_data(buf, 2)
        assert dm.locations(buf) == {HOST, 2}
        assert dm.latest(buf) == 2

    def test_noop_if_already_resident(self):
        dm = DataManager()
        buf = Buffer(100)
        dm.commit_enter_data(buf, 2)
        assert dm.plan_enter_data(buf, 2) == []


class TestTargetRegions:
    def test_forward_from_most_recent_location(self):
        """Figure 1 walk-through: A moves head->node1, then node1->node2."""
        dm = DataManager()
        a = Buffer(1000, name="A")
        foo = target(0, depend_inout(a))
        bar = target(1, depend_inout(a))

        # enter data: A -> node 1 (first user).
        for m in dm.plan_enter_data(a, 1):
            dm.commit_move(m)
        dm.commit_enter_data(a, 1)

        # foo on node 1: already resident, no moves.
        assert dm.plan_for_task(foo, 1) == ([], [])
        stale = dm.commit_task_done(foo, 1)
        # inout: node 1 becomes sole owner; the host copy is stale.
        assert stale == [(a, HOST)]
        assert dm.locations(a) == {1}

        # bar on node 2: copy from node 1 (not from the head!).
        moves, allocs = dm.plan_for_task(bar, 2)
        assert moves == [Move(a, 1, 2)]
        assert allocs == []
        for m in moves:
            dm.commit_move(m)
        stale = dm.commit_task_done(bar, 2)
        assert stale == [(a, 1)]
        assert dm.locations(a) == {2}
        assert dm.latest(a) == 2

    def test_readonly_copies_are_kept(self):
        dm = DataManager()
        a = Buffer(1000)
        dm.commit_enter_data(a, 1)
        reader1 = target(0, depend_in(a))
        reader2 = target(1, depend_in(a))
        for m in dm.plan_for_task(reader1, 2)[0]:
            dm.commit_move(m)
        assert dm.commit_task_done(reader1, 2) == []
        # Copies now on HOST, 1, 2; a reader on 3 may pull from any.
        assert dm.locations(a) == {HOST, 1, 2}
        moves, allocs = dm.plan_for_task(reader2, 1)
        assert moves == [] and allocs == []  # already resident on 1

    def test_duplicate_deps_planned_once(self):
        dm = DataManager()
        a = Buffer(10)
        task = target(0, depend_in(a), depend_out(a))
        moves, allocs = dm.plan_for_task(task, 3)
        assert len(moves) == 1 and allocs == []

    def test_write_only_buffer_allocated_not_copied(self):
        # A pure out dependence means the task overwrites the buffer,
        # so the DM allocates device memory but moves no bytes.
        dm = DataManager()
        a = Buffer(10)
        moves, allocs = dm.plan_for_task(target(0, depend_out(a)), 1)
        assert moves == []
        assert allocs == [a]
        dm.commit_alloc(a, 1)
        assert dm.is_resident(a, 1)
        assert dm.latest(a) == HOST  # no meaningful bytes yet

    def test_move_from_invalid_location_rejected(self):
        dm = DataManager()
        a = Buffer(10)
        with pytest.raises(ValueError, match="no valid copy"):
            dm.commit_move(Move(a, 3, 1))


class TestExitData:
    def test_retrieved_from_latest_and_removed_everywhere(self):
        dm = DataManager()
        a = Buffer(10)
        dm.commit_enter_data(a, 1)
        writer = target(0, depend_inout(a))
        dm.commit_task_done(writer, 1)

        moves = dm.plan_exit_data(a)
        assert moves == [Move(a, 1, HOST)]
        for m in moves:
            dm.commit_move(m)
        removals = dm.commit_exit_data(a)
        assert removals == [(a, 1)]
        assert dm.locations(a) == {HOST}
        assert dm.latest(a) == HOST

    def test_noop_when_only_on_host(self):
        dm = DataManager()
        a = Buffer(10)
        assert dm.plan_exit_data(a) == []
        assert dm.commit_exit_data(a) == []

    def test_replicated_readonly_buffer_fully_cleaned(self):
        dm = DataManager()
        a = Buffer(10)
        r1, r2 = target(0, depend_in(a)), target(1, depend_in(a))
        for node, task in ((1, r1), (2, r2)):
            for m in dm.plan_for_task(task, node)[0]:
                dm.commit_move(m)
            dm.commit_task_done(task, node)
        removals = dm.commit_exit_data(a)
        assert removals == [(a, 1), (a, 2)]


class TestMoveProperties:
    def test_from_to_host_flags(self):
        buf = Buffer(1)
        assert Move(buf, HOST, 2).from_host
        assert not Move(buf, HOST, 2).to_host
        assert Move(buf, 2, HOST).to_host
