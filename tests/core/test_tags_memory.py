"""Tests for tag allocation and worker-side device memory."""

import pytest

from repro.core.memory import DeviceMemory, DeviceMemoryError
from repro.core.tags import FIRST_EVENT_TAG, NOTIFY_TAG, TagAllocator


class TestTagAllocator:
    def test_tags_unique_and_monotone(self):
        alloc = TagAllocator()
        tags = [alloc.allocate() for _ in range(100)]
        assert len(set(tags)) == 100
        assert tags == sorted(tags)
        assert alloc.allocated == 100

    def test_never_collides_with_notify_tag(self):
        alloc = TagAllocator()
        assert all(alloc.allocate() != NOTIFY_TAG for _ in range(10))

    def test_custom_first_tag(self):
        alloc = TagAllocator(first=100)
        assert alloc.allocate() == 100

    def test_first_below_reserved_rejected(self):
        with pytest.raises(ValueError):
            TagAllocator(first=NOTIFY_TAG)


class TestDeviceMemory:
    def test_alloc_and_read(self):
        mem = DeviceMemory(1)
        mem.alloc(7, payload="data")
        assert 7 in mem
        assert mem.read(7) == "data"
        assert mem.allocations == 1

    def test_read_missing_raises(self):
        mem = DeviceMemory(1)
        with pytest.raises(DeviceMemoryError, match="non-resident"):
            mem.read(42)

    def test_write_requires_alloc(self):
        mem = DeviceMemory(1)
        with pytest.raises(DeviceMemoryError, match="unallocated"):
            mem.write(1, "x")
        mem.alloc(1)
        mem.write(1, "x")
        assert mem.read(1) == "x"

    def test_delete(self):
        mem = DeviceMemory(1)
        mem.alloc(1)
        mem.delete(1)
        assert 1 not in mem
        assert mem.deletions == 1
        with pytest.raises(DeviceMemoryError):
            mem.delete(1)

    def test_realloc_not_double_counted(self):
        mem = DeviceMemory(1)
        mem.alloc(1, "a")
        mem.alloc(1, "b")
        assert mem.allocations == 1
        assert mem.read(1) == "b"

    def test_resident_buffers_sorted(self):
        mem = DeviceMemory(1)
        for bid in (5, 1, 3):
            mem.alloc(bid)
        assert mem.resident_buffers() == [1, 3, 5]
        assert len(mem) == 3
