"""Communicators, ranks, and point-to-point messaging.

Matching semantics follow MPI: a receive names ``(source, tag)`` within
one communicator; either may be a wildcard.  Matching is FIFO over the
arrival order at the receiver, which — combined with per-(comm, src)
sequence numbers — preserves the non-overtaking rule.

Protocol model: *eager*.  A send charges a per-message software overhead
plus the fabric transfer time (VCI-contended), then the message lands in
the receiver's matching queue.  The sender never blocks on the receiver;
this matches how MPICH handles the small-to-medium control messages the
OMPC event system exchanges, and the bulk-data sends in our workloads
are always pre-posted on the receive side.

Reliable transport
------------------
A clean fabric delivers every message, so the default path is
fire-and-forget.  When the cluster carries a lossy
:class:`~repro.core.faultmodel.FaultPlan`, construct the world with a
:class:`TransportConfig`: point-to-point sends then carry their
per-(comm, src) sequence number end to end, the receiving NIC
acknowledges each delivery, and the sender retransmits on an exponential
-backoff timer until acked or a configurable retry cap is exceeded.
Duplicates created by lost acks are suppressed at the receiver by
``(src, seq)``; retransmissions and acks travel through the same
VCI-contended fabric as first transmissions, so loss costs simulated
time rather than correctness.  Under loss, retransmitted messages may
arrive after later first-try messages — the non-overtaking guarantee is
relaxed to what an unordered reliable datagram transport provides, which
every consumer in this codebase tolerates (matching is tag-isolated).
Acks model NIC-level delivery receipts: a crashed node's queue still
acks (the origin detects death through the §3.1 failure machinery, not
through transport timeouts).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from repro.analysis.hooks import NULL_ANALYSIS
from repro.cluster.machine import Cluster
from repro.mpi.datatypes import Message
from repro.mpi.errors import MpiError
from repro.mpi.matchtable import MatchStore
from repro.mpi.request import Request
from repro.sim.primitives import AnyOf
from repro.sim.resources import Store
from repro.util.units import MICROSECOND

#: Receive-source wildcard (``MPI_ANY_SOURCE``).
ANY_SOURCE = -1
#: Receive-tag wildcard (``MPI_ANY_TAG``).
ANY_TAG = -1


@dataclass(frozen=True)
class TransportConfig:
    """Parameters of the reliable (ack + retransmit) transport.

    ``rto`` is the *base* retransmission timeout added on top of an
    estimate of the message's own uncontended round trip (so bulk
    messages do not spuriously retransmit merely because they serialize
    longer than small ones); each retry multiplies the base by
    ``backoff``.  Exceeding ``max_retries`` raises :class:`MpiError` —
    the fabric is considered broken, not merely lossy.
    """

    ack_bytes: float = 16.0
    rto: float = 100.0 * MICROSECOND
    backoff: float = 2.0
    max_retries: int = 16

    def __post_init__(self) -> None:
        if self.ack_bytes < 0:
            raise ValueError("ack_bytes must be >= 0")
        if self.rto <= 0:
            raise ValueError("rto must be > 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


class MpiWorld:
    """All MPI state for one cluster: ranks, queues, communicators.

    ``overhead`` is the per-message software cost (matching, packing,
    progress-engine work) charged on the sending side; 0.5 µs is in line
    with measured MPICH/UCX small-message overheads.  ``transport``
    enables the reliable ack/retransmit protocol on every communicator
    that does not opt out (see :meth:`new_communicator`).
    """

    def __init__(
        self,
        cluster: Cluster,
        overhead: float = 0.5 * MICROSECOND,
        transport: TransportConfig | None = None,
    ):
        if overhead < 0:
            raise ValueError("overhead must be >= 0")
        self.cluster = cluster
        self.sim = cluster.sim
        self.overhead = overhead
        self.transport = transport
        #: Observability sink, captured from the cluster at construction
        #: (install an observer via ``Cluster.install_observer`` first).
        self.obs = cluster.obs
        #: Correctness-analysis sink, captured likewise (install via
        #: ``Cluster.install_analysis`` before constructing the world).
        self.analysis = getattr(cluster, "analysis", NULL_ANALYSIS)
        #: Transport-level counters (drops seen, retransmissions, acks,
        #: duplicate deliveries suppressed).
        self.stats: dict[str, int] = {
            "drops": 0, "retransmissions": 0, "acks": 0, "duplicates": 0,
        }
        self._next_comm_id = 0
        # Matching queues are per (rank, comm); one Store per pair, lazily
        # created, so traffic on one communicator never scans another's.
        self._queues: dict[tuple[int, int], Store] = {}
        self.world = self.new_communicator()

    @property
    def size(self) -> int:
        return self.cluster.num_nodes

    def new_communicator(
        self, reliable: bool | None = None, service: bool = False,
    ) -> "Communicator":
        """Create a communicator.

        ``reliable=False`` opts this communicator out of the world's
        reliable transport even when one is configured — datagram
        semantics for traffic whose loss is handled at the protocol
        level (heartbeats).  ``None`` inherits the world default.

        ``service=True`` marks infrastructure traffic (heartbeats,
        pings, head-log replication): the MPI checker skips it entirely
        — persistent service loops legitimately hold pending receives
        at shutdown, and datagrams are lost by design, so auditing them
        would only produce noise.
        """
        transport = self.transport if reliable is not False else None
        comm = Communicator(self, self._next_comm_id, transport, service)
        self.analysis.mpi.register_comm(comm.comm_id, service)
        self._next_comm_id += 1
        return comm

    def _queue(self, rank: int, comm_id: int) -> Store:
        key = (rank, comm_id)
        store = self._queues.get(key)
        if store is None:
            # The fast kernel matches through slotted (src, tag) tables;
            # the reference kernel keeps the predicate-scan Store.  Both
            # produce bit-identical event streams (digest-tested).
            if self.sim._fastpath:
                store = MatchStore(self.sim, name=f"mpi.q{rank}.c{comm_id}")
            else:
                store = Store(self.sim, name=f"mpi.q{rank}.c{comm_id}")
            self._queues[key] = store
        return store

    def _dropped(self, src: int, dst: int) -> bool:
        """Consult the installed fault plan for one drop decision."""
        faults = self.cluster.network.faults
        if faults is None or src == dst:
            return False
        if faults.drops(src, dst):
            self.stats["drops"] += 1
            return True
        return False


class Communicator:
    """An isolated message-matching context (like ``MPI_Comm``)."""

    def __init__(
        self,
        mpi: MpiWorld,
        comm_id: int,
        transport: TransportConfig | None = None,
        service: bool = False,
    ):
        self.mpi = mpi
        self.comm_id = comm_id
        self.transport = transport
        self.service = service
        self._send_seq: dict[int, int] = defaultdict(int)
        #: (src, seq) pairs already delivered (reliable-mode dedup).
        self._delivered: set[tuple[int, int]] = set()
        #: Pending ack events keyed by (src, dst, seq).
        self._ack_waiters: dict[tuple[int, int, int], Any] = {}

    @property
    def size(self) -> int:
        return self.mpi.size

    def rank(self, rank_id: int) -> "Rank":
        """Bind a rank identity for issuing operations."""
        self._check_rank(rank_id)
        return Rank(self, rank_id)

    def dup(self) -> "Communicator":
        """Duplicate: a new communicator over the same group."""
        return self.mpi.new_communicator(
            reliable=self.transport is not None if self.mpi.transport else None,
            service=self.service,
        )

    def _check_rank(self, rank_id: int) -> None:
        if not 0 <= rank_id < self.size:
            raise MpiError(f"rank {rank_id} out of range [0, {self.size})")

    # -- internals shared by Rank --------------------------------------------
    def _isend(self, src: int, dst: int, payload: Any, nbytes: float, tag: int) -> Request:
        self._check_rank(src)
        self._check_rank(dst)
        if tag < 0:
            raise MpiError(f"send tag must be >= 0, got {tag}")
        seq = self._send_seq[src]
        self._send_seq[src] = seq + 1
        msg = Message(self.comm_id, src, dst, tag, payload, nbytes, seq)
        if self.transport is not None and src != dst:
            gen = self._deliver_reliable(msg)
        else:
            gen = self._deliver(msg)
        proc = self.mpi.sim.process(gen, name=f"isend:{src}->{dst}:t{tag}")
        request = Request(proc, "send")
        if self.mpi.analysis.enabled and not self.service:
            self.mpi.analysis.mpi.on_isend(
                request, self.comm_id, src, dst, tag
            )
        return request

    def _deliver(self, msg: Message):
        sim = self.mpi.sim
        obs = self.mpi.obs
        # One ``enabled`` check instead of four no-op dispatches (and
        # their f-string arguments) per message — this generator runs
        # once per point-to-point send, the hottest MPI path there is.
        enabled = obs.enabled
        if enabled:
            open_span = obs.begin(
                "mpi", f"send t{msg.tag}", msg.src,
                dst=msg.dst, nbytes=msg.nbytes, seq=msg.seq,
            )
        if self.mpi.overhead:
            yield sim.timeout(self.mpi.overhead)
        yield from self.mpi.cluster.network.transfer(msg.src, msg.dst, msg.nbytes)
        if self.mpi._dropped(msg.src, msg.dst):
            if enabled:
                obs.end(open_span, dropped=True)
            return  # lost in the fabric; fire-and-forget senders never know
        if enabled:
            flow = obs.new_flow()
            obs.end(open_span, flow_id=flow, flow_phase="s")
        yield self.mpi._queue(msg.dst, self.comm_id).put(msg)
        if enabled:
            obs.instant(
                "mpi", f"recv t{msg.tag}", msg.dst,
                flow_id=flow, flow_phase="f", src=msg.src,
            )

    # -- reliable transport ---------------------------------------------------
    def _deliver_reliable(self, msg: Message):
        """Generator: send with ack + exponential-backoff retransmission.

        Local completion (the isend Request) means *acked*, not merely
        serialized — the eager-protocol guarantee a lossy fabric can
        actually keep.
        """
        sim = self.mpi.sim
        obs = self.mpi.obs
        enabled = obs.enabled
        tc = self.transport
        net = self.mpi.cluster.network
        key = (msg.src, msg.dst, msg.seq)
        ack = sim.event(f"mpi-ack:{key}")
        self._ack_waiters[key] = ack
        # The wait window covers the ack's own uncontended round trip.
        rto = tc.rto + 2 * net.transfer_time(msg.dst, msg.src, tc.ack_bytes)
        flow: int | None = None
        accepted_once = False
        try:
            for attempt in range(tc.max_retries + 1):
                if attempt:
                    self.mpi.stats["retransmissions"] += 1
                if enabled:
                    open_span = obs.begin(
                        "mpi", f"send t{msg.tag}", msg.src,
                        dst=msg.dst, nbytes=msg.nbytes, seq=msg.seq,
                        attempt=attempt,
                    )
                if self.mpi.overhead:
                    yield sim.timeout(self.mpi.overhead)
                yield from net.transfer(msg.src, msg.dst, msg.nbytes)
                if not self.mpi._dropped(msg.src, msg.dst):
                    # Only the first accepted transmission carries the
                    # flow arrow; duplicates are suppressed downstream.
                    fresh = not accepted_once
                    accepted_once = True
                    if fresh and enabled:
                        flow = obs.new_flow()
                    self._transport_accept(msg, flow if fresh else None)
                    if enabled:
                        obs.end(
                            open_span,
                            flow_id=flow if fresh else None,
                            flow_phase="s" if fresh else None,
                        )
                elif enabled:
                    obs.end(open_span, dropped=True)
                if ack.triggered:
                    return
                yield AnyOf(sim, [ack, sim.timeout(rto)])
                if ack.triggered:
                    return
                rto *= tc.backoff
            raise MpiError(
                f"reliable send {msg.src}->{msg.dst} seq={msg.seq} "
                f"tag={msg.tag} unacked after {tc.max_retries} retries"
            )
        finally:
            self._ack_waiters.pop(key, None)

    def _transport_accept(self, msg: Message, flow_id: int | None = None) -> None:
        """Receiver-side transport: dedup, enqueue, and schedule the ack."""
        obs = self.mpi.obs
        enabled = obs.enabled
        key = (msg.src, msg.seq)
        if key in self._delivered:
            self.mpi.stats["duplicates"] += 1
            if enabled:
                obs.instant("mpi", f"dup t{msg.tag}", msg.dst, src=msg.src)
        else:
            self._delivered.add(key)
            self.mpi._queue(msg.dst, self.comm_id).put(msg)
            if enabled:
                obs.instant(
                    "mpi", f"recv t{msg.tag}", msg.dst,
                    flow_id=flow_id,
                    flow_phase="f" if flow_id is not None else None,
                    src=msg.src,
                )
        self.mpi.sim.process(
            self._send_ack(msg), name=f"mpi-ack:{msg.dst}->{msg.src}"
        )

    def _send_ack(self, msg: Message):
        sim = self.mpi.sim
        tc = self.transport
        obs = self.mpi.obs
        enabled = obs.enabled
        if enabled:
            open_span = obs.begin(
                "mpi", f"ack t{msg.tag}", msg.dst, dst=msg.src, seq=msg.seq
            )
        if self.mpi.overhead:
            yield sim.timeout(self.mpi.overhead)
        yield from self.mpi.cluster.network.transfer(
            msg.dst, msg.src, tc.ack_bytes
        )
        self.mpi.stats["acks"] += 1
        dropped = self.mpi._dropped(msg.dst, msg.src)
        if enabled:
            obs.end(open_span, dropped=dropped)
        if dropped:
            return  # the ack itself was lost; the sender will retransmit
        ack = self._ack_waiters.get((msg.src, msg.dst, msg.seq))
        if ack is not None and not ack.triggered:
            ack.succeed()

    def _irecv(self, dst: int, src: int, tag: int) -> Request:
        self._check_rank(dst)
        if src != ANY_SOURCE:
            self._check_rank(src)
        if tag < 0 and tag != ANY_TAG:
            raise MpiError(f"recv tag must be >= 0 or ANY_TAG, got {tag}")

        store = self.mpi._queue(dst, self.comm_id)
        if type(store) is MatchStore:
            get = store.get_match(src, tag)
        else:
            def match(msg: Message) -> bool:
                if src != ANY_SOURCE and msg.src != src:
                    return False
                if tag != ANY_TAG and msg.tag != tag:
                    return False
                return True

            get = store.get(match)
        request = Request(get, "recv", canceller=lambda: store.cancel(get))
        if self.mpi.analysis.enabled and not self.service:
            self.mpi.analysis.mpi.on_irecv(
                request, self.comm_id, dst, src, tag
            )
        return request


class Rank:
    """A rank identity bound to one communicator.

    All methods that move data are generators (``yield from``) or return
    :class:`Request` handles; they must be driven from inside a sim
    process running "on" the corresponding node.
    """

    def __init__(self, comm: Communicator, rank_id: int):
        self.comm = comm
        self.rank_id = rank_id

    @property
    def size(self) -> int:
        return self.comm.size

    def on(self, comm: Communicator) -> "Rank":
        """This same rank identity on a different communicator."""
        return comm.rank(self.rank_id)

    # -- nonblocking -------------------------------------------------------
    def isend(self, dst: int, payload: Any, nbytes: float = 0.0, tag: int = 0) -> Request:
        return self.comm._isend(self.rank_id, dst, payload, nbytes, tag)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return self.comm._irecv(self.rank_id, src, tag)

    # -- blocking (generators) ------------------------------------------------
    def send(self, dst: int, payload: Any, nbytes: float = 0.0, tag: int = 0):
        """Generator: send and wait for local completion."""
        req = self.isend(dst, payload, nbytes, tag)
        yield from req.wait()

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: receive the next matching message (returns it)."""
        req = self.irecv(src, tag)
        msg = yield from req.wait()
        return msg
