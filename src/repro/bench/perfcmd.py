"""The ``perf`` subcommand: simulator performance baseline.

Usage::

    python -m repro.bench perf
    python -m repro.bench perf --out BENCH_jobs.json --quick

Times representative workloads — Fig. 5-style Task Bench scalability
cells on the single-application runtime, plus the multi-tenant jobs
bench (backfill workload and the elastic overload scenario) — and
records, per cell, the host wall time, the number of simulation events
processed, the resulting events/second, and the simulated makespan.
The JSON this emits (``BENCH_jobs.json`` by convention) is the
regression baseline future performance work compares against: events
and makespans are exactly reproducible, wall time and events/second
characterize the machine the baseline was taken on.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

#: Reference fabric bandwidth for CCR-derived payload sizes (§6.1).
DEFAULT_BANDWIDTH = 100e9 / 8.0

SCHEMA = "repro-perf/1"


def _fig5_spec(nodes: int, steps: int) -> TaskBenchSpec:
    """Fig. 5 cell shape: width 2n, 50 ms tasks, CCR 1.0 (steps vary
    so ``--quick`` stays fast)."""
    return TaskBenchSpec.with_ccr(
        2 * nodes, steps, Pattern.STENCIL_1D,
        KernelSpec.paper_50ms(), 1.0, DEFAULT_BANDWIDTH,
    )


def _run_fig5_cell(nodes: int, steps: int) -> dict:
    program = build_omp_program(_fig5_spec(nodes, steps))
    runtime = OMPCRuntime(ClusterSpec(num_nodes=nodes), OMPCConfig())
    t0 = time.perf_counter()
    result = runtime.run(program)
    wall = time.perf_counter() - t0
    events = runtime.last_cluster.sim._seq
    return _cell(
        f"fig5_stencil_1d_n{nodes}", wall, events, result.makespan
    )


def _run_jobs_backfill(quick: bool) -> dict:
    from repro.jobs import JobManager, PoissonWorkload

    workload = PoissonWorkload(
        seed=7, jobs=8 if quick else 24, mean_interarrival=0.01,
        large=(8, 12), large_fraction=0.35, steps=(3, 6),
        task_seconds=(0.02, 0.08),
    ).generate()
    manager = JobManager(
        Cluster(ClusterSpec(num_nodes=17)), policy="backfill"
    )
    t0 = time.perf_counter()
    report = manager.run(workload)
    wall = time.perf_counter() - t0
    return _cell(
        "jobs_backfill", wall, manager.sim._seq, report.horizon
    )


def _run_jobs_overload(quick: bool) -> dict:
    from repro.bench.jobscmd import run_overload

    manager, report = run_overload("backfill", load=1.0, quick=quick)
    # The manager is built inside run_overload; its wall time includes
    # trace generation, which is part of the serving path anyway.
    t0 = time.perf_counter()
    manager2, report2 = run_overload("backfill", load=1.0, quick=quick)
    wall = time.perf_counter() - t0
    del manager, report  # warm-up run (imports, first-touch caches)
    return _cell(
        "jobs_overload_1x", wall, manager2.sim._seq, report2.horizon
    )


def _cell(name: str, wall: float, events: int, makespan: float) -> dict:
    return {
        "name": name,
        "wall_s": round(wall, 6),
        "events": int(events),
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "makespan_s": round(float(makespan), 9),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Measure simulator throughput (events/sec + "
        "makespan) on representative workloads and emit a JSON "
        "baseline for perf regression tracking.",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_jobs.json"),
                        help="output JSON path (default: BENCH_jobs.json)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller cells for smoke tests")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    steps = 4 if args.quick else 16
    node_counts = (4, 8) if args.quick else (4, 8, 16)

    cells = []
    for nodes in node_counts:
        cell = _run_fig5_cell(nodes, steps)
        cells.append(cell)
        print(f"  {cell['name']}: {cell['events']} events in "
              f"{cell['wall_s']:.3f} s host time "
              f"({cell['events_per_sec']:.0f} ev/s), "
              f"makespan {cell['makespan_s']:.4f} s")
    for runner in (_run_jobs_backfill, _run_jobs_overload):
        cell = runner(args.quick)
        cells.append(cell)
        print(f"  {cell['name']}: {cell['events']} events in "
              f"{cell['wall_s']:.3f} s host time "
              f"({cell['events_per_sec']:.0f} ev/s), "
              f"makespan {cell['makespan_s']:.4f} s")

    payload = {
        "schema": SCHEMA,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cells": cells,
    }
    args.out.write_text(json.dumps(payload, indent=2))
    print(f"perf baseline -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
