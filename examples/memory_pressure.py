"""Graceful degradation when the working set outgrows device memory.

Real accelerators run out of memory long before clusters run out of
work.  The tiered data plane (device -> host -> remote) turns that hard
failure into a soft slowdown: when a node's device table is full, the
head *evicts* a victim — dropping it if a clean replica exists
elsewhere, write-behind spilling it to host memory if it is a dirty
sole copy — and transparently re-fetches it on the next touch.  Pinned
buffers (those an in-flight kernel is using) are never victims.

Three scenes:

1. A working set 2x device capacity runs to completion on the plain
   runtime, bit-for-bit matching the unlimited run's outputs.
2. The same capacity on the fault-tolerant runtime, with a node crash
   mid-run — eviction, spill, failure recovery, and re-fetch compose.
3. A ``MemoryPressure`` fault arm shrinks one node's capacity to 30%
   mid-run and makes half its re-fetches fail; exponential-backoff
   retry rides through it.

Run:  python examples/memory_pressure.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import (
    FaultPlan,
    FaultTolerantRuntime,
    MemoryPressure,
    NodeFailure,
    OMPCConfig,
    OMPCRuntime,
)
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out

KB = 1024.0


def build_workload(n: int = 10, nbytes: float = 4 * KB):
    """Staged inputs, dirtied in place, then reduced to outputs.

    The in-place (INOUT) middle stage makes every staged buffer a dirty
    sole copy on its node — under pressure those must be *spilled* to
    host, not just dropped, or the updates would be lost.
    """
    prog = OmpProgram("pressure-demo")
    arrays = [np.zeros(64) for _ in range(n)]
    results = [np.zeros(64) for _ in range(n)]
    bufs = [prog.buffer(nbytes, data=a, name=f"in{i}")
            for i, a in enumerate(arrays)]
    outs = [prog.buffer(nbytes, data=r, name=f"out{i}")
            for i, r in enumerate(results)]
    prog.target_enter_data(*bufs)
    for i, b in enumerate(bufs):
        prog.target(
            fn=lambda x, k=i: np.add(x, k + 1.0, out=x),
            depend=[depend_inout(b)],
            cost=0.002, name=f"dirty{i}",
        )
    for i, (b, o) in enumerate(zip(bufs, outs)):
        prog.target(
            fn=lambda x, y: np.copyto(y, 3.0 * x),
            depend=[depend_in(b), depend_out(o)],
            cost=0.002, name=f"reduce{i}",
        )
    prog.target_exit_data(*outs)
    return prog, results


def print_mem_counters(counters) -> None:
    hits = counters.get("mem.hit", 0)
    misses = counters.get("mem.miss", 0)
    total = hits + misses
    rate = f" ({hits / total * 100:.0f}% hit rate)" if total else ""
    print(f"device hits/misses   : {hits:.0f}/{misses:.0f}{rate}")
    print(f"evictions            : {counters.get('mem.evict', 0):.0f} "
          f"({counters.get('mem.spill_bytes', 0) / KB:.0f} KiB spilled "
          "to host)")
    print(f"fetch retries        : "
          f"{counters.get('mem.fetch_retries', 0):.0f}")


def main() -> None:
    # --- 1. oversubscribed plain runtime ------------------------------
    prog, results = build_workload()
    OMPCRuntime(ClusterSpec(num_nodes=3)).run(prog)
    reference = [r.copy() for r in results]

    # 10 x 4 KiB staged + 10 x 4 KiB outputs on 2 workers, but each
    # device holds only 20 KiB: roughly half the per-node working set.
    cfg = OMPCConfig(device_memory_bytes=20 * KB, eviction_policy="lru",
                     trace=True)
    prog, results = build_workload()
    result = OMPCRuntime(ClusterSpec(num_nodes=3), cfg).run(prog)
    print("--- working set ~2x device capacity (plain runtime) ---")
    print(f"makespan             : {result.makespan * 1e3:.1f} ms")
    print_mem_counters(result.counters)
    ok = all((got == ref).all() for got, ref in zip(results, reference))
    print(f"outputs match unlimited run: {ok}")
    assert ok

    # --- 2. pressure + a node crash (fault-tolerant runtime) ----------
    prog, results = build_workload()
    runtime = FaultTolerantRuntime(ClusterSpec(num_nodes=4), cfg)
    ft = runtime.run(prog, failures=[NodeFailure(time=0.004, node=2)])
    counters = runtime.last_cluster.trace.counters
    print("\n--- same budget, node 2 dies at t=4ms (FT runtime) ---")
    print(f"makespan             : {ft.makespan * 1e3:.1f} ms, "
          f"failures survived: {ft.failures}")
    print_mem_counters(counters)
    ok = all((got == ref).all() for got, ref in zip(results, reference))
    print(f"outputs match unlimited run: {ok}")
    assert ok

    # --- 3. MemoryPressure fault arm: shrink + flaky re-fetches -------
    # Halving is the deepest squeeze that stays degradable: a reduce
    # task touches 8 KiB solo (4 KiB in + 4 KiB out), and a solo
    # working set that cannot fit is correctly fatal.
    plan = FaultPlan(seed=11, pressures=[
        MemoryPressure(node=1, start=0.0, capacity_factor=0.5,
                       fetch_fail_prob=0.5),
    ])
    flaky_cfg = OMPCConfig(device_memory_bytes=20 * KB,
                           eviction_policy="lru", trace=True,
                           mem_fetch_retries=50)
    prog, results = build_workload()
    runtime = FaultTolerantRuntime(ClusterSpec(num_nodes=4), flaky_cfg)
    ft = runtime.run(prog, fault_plan=plan)
    counters = runtime.last_cluster.trace.counters
    print("\n--- node 1 squeezed to 50% capacity, 50% of its "
          "re-fetches fail ---")
    print(f"makespan             : {ft.makespan * 1e3:.1f} ms")
    print_mem_counters(counters)
    ok = all((got == ref).all() for got, ref in zip(results, reference))
    print(f"outputs match unlimited run: {ok}")
    assert ok

    print("\nout-of-memory became a slowdown, not a crash.")


if __name__ == "__main__":
    main()
