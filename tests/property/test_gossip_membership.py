"""Property tests for SWIM gossip membership convergence.

Two protocol invariants, checked across seeds and failure schedules:

* **Bounded convergence** — after nodes die, every surviving node's
  membership view converges to the same confirmed-dead set, and the
  dissemination tail (declaration → last live view updated) is bounded
  in protocol rounds.  SWIM's epidemic piggyback plus the one-shot
  confirm broadcast makes this a small constant, not O(N).

* **No resurrection** — a confirmed death is irrevocable.  Once any
  view holds a node ``dead``, no later timeline entry may flip that
  view back to ``alive`` or ``suspect``, whatever incarnation numbers
  or stale piggybacked updates arrive afterwards.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core.events import EventSystem
from repro.core.gossip import DEAD, GossipMembership
from repro.mpi import MpiWorld

from tests.core.test_faults import FAST

#: Dissemination budget, in protocol rounds, from declaration to every
#: live view holding the death.  The confirm broadcast alone converges
#: in ~1 round; the bound leaves room for message latency under load.
CONVERGENCE_ROUNDS_BOUND = 8


def run_gossip(n, kill, seed, horizon=0.25, stop_at=0.2):
    """Run an n-node membership group, killing ``kill`` per schedule.

    ``kill`` is a list of (time, node) pairs.  Returns the membership
    object after the clock reaches ``horizon``.
    """
    cluster = Cluster(ClusterSpec(num_nodes=n))
    mpi = MpiWorld(cluster)
    events = EventSystem(cluster, mpi, FAST)
    events.start()
    membership = GossipMembership(cluster, mpi, events, seed=seed)
    membership.start()

    def chaos():
        now = 0.0
        for at, node in sorted(kill):
            if at > now:
                yield cluster.sim.timeout(at - now)
                now = at
            events.fail_node(node)
        yield cluster.sim.timeout(stop_at - now)
        membership.stop()

    cluster.sim.process(chaos())
    cluster.sim.run(until=horizon)
    return membership


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_live_views_converge_to_same_membership(seed):
    kill = [(0.02, 3), (0.05, 9)]
    membership = run_gossip(16, kill, seed)
    dead = {node for _t, node in kill}
    assert {d for d, _by, _t in membership.detections} == dead
    for node in membership.live_nodes():
        assert membership.dead_view(node) == dead, (
            f"node {node} (seed {seed}) never converged"
        )


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_convergence_within_bounded_rounds(seed):
    membership = run_gossip(16, [(0.02, 5)], seed)
    assert 5 in membership.convergence
    record = membership.convergence[5]
    assert len(record) == 4, "death was declared but never converged"
    declared_at, rounds_then, converged_at, rounds_at = record
    assert converged_at >= declared_at
    assert rounds_at - rounds_then <= CONVERGENCE_ROUNDS_BOUND, (
        f"seed {seed}: dissemination took {rounds_at - rounds_then} "
        f"rounds (bound {CONVERGENCE_ROUNDS_BOUND})"
    )


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_confirmed_dead_never_resurrected(seed):
    kill = [(0.02, 2), (0.03, 6), (0.06, 12)]
    membership = run_gossip(16, kill, seed)
    # Replay the timeline per (viewing node, subject): once a view
    # records ``dead``, every later entry for that subject stays dead.
    declared: set[tuple[int, int]] = set()
    for _t, node, status, target in membership.timeline:
        if (node, target) in declared:
            assert status == DEAD, (
                f"seed {seed}: view {node} resurrected node {target}"
            )
        if status == DEAD:
            declared.add((node, target))
    # And the final views agree the dead are dead.
    dead = {node for _t, node in kill}
    for node in membership.live_nodes():
        assert membership.dead_view(node) >= dead


@pytest.mark.parametrize("seed", [0, 5])
def test_no_false_positives_in_quiet_group(seed):
    membership = run_gossip(24, [], seed)
    assert membership.detections == []
    assert membership.false_positives == 0
    assert all(membership.dead_view(n) == frozenset()
               for n in range(24))


def test_mass_failure_converges():
    # A third of the group dies at once; survivors still agree.
    kill = [(0.02, n) for n in (2, 5, 8, 11, 14)]
    membership = run_gossip(16, kill, seed=13, horizon=0.4, stop_at=0.3)
    dead = {node for _t, node in kill}
    assert {d for d, _by, _t in membership.detections} == dead
    for node in membership.live_nodes():
        assert membership.dead_view(node) == dead
