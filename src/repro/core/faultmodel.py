"""Declarative transient-fault injection (lossy links, degraded links,
stragglers, and hangs).

The §3.1 fault-tolerance extension in :mod:`repro.core.faults` only
models *fail-stop* crashes.  Real InfiniBand clusters also exhibit
*transient* faults that a runtime must ride out rather than recover
from: occasional message loss, links that temporarily degrade, nodes
that stall (stragglers), and nodes that go silent for a while and then
resume.  This module describes those faults declaratively:

* :class:`LinkLoss` — a per-link independent message-drop probability,
  deterministic via :func:`repro.util.rng.derive_rng` (one stream per
  directed link, so adding traffic on one link never perturbs the loss
  pattern of another).
* :class:`LinkDegradation` — a time window during which a link's
  propagation latency and/or bandwidth are scaled.
* :class:`NodeStall` — a time window during which a node's compute rate
  is multiplied (``factor < 1`` models a straggler).
* :class:`NodeHang` — a node is completely silent (no compute progress,
  NIC holds all traffic) for a duration, then resumes — distinct from a
  fail-stop crash, which never resumes.

A :class:`FaultPlan` bundles the fault set with a seed;
:meth:`FaultPlan.install` binds it to a live cluster, producing an
:class:`ActiveFaults` object that the network layer
(:mod:`repro.cluster.network`), the MPI transport
(:mod:`repro.mpi.comm`), and the event system (:mod:`repro.core.events`)
consult at runtime.  Everything is deterministic: the same plan + seed
yields the same drop pattern, the same retransmissions, and the same
makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class LinkLoss:
    """Independent per-message drop probability on matching links.

    ``src``/``dst`` of ``None`` are wildcards; the first matching rule
    in the plan wins, so put specific links before blanket rules.
    """

    probability: float
    src: int | None = None
    dst: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class LinkDegradation:
    """A temporary slowdown window on matching links.

    During ``[start, end)`` a matching link's propagation latency is
    multiplied by ``latency_factor`` and its fair-share bandwidth by
    ``bandwidth_factor`` (< 1 slows the link).  Overlapping windows
    compose multiplicatively.
    """

    start: float
    end: float
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    src: int | None = None
    dst: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")
        if self.latency_factor <= 0 or self.bandwidth_factor <= 0:
            raise ValueError("factors must be > 0")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class NodeStall:
    """A compute-rate multiplier on one node over a time window.

    ``factor`` scales the node's effective compute rate during
    ``[start, end)``: ``0.25`` means work proceeds at a quarter speed (a
    straggler); values above 1 are allowed for completeness.
    """

    node: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")
        if self.factor <= 0:
            raise ValueError("stall factor must be > 0 (use NodeHang for silence)")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class NodeHang:
    """A node goes completely silent for ``duration``, then resumes.

    During the window the node makes no compute progress and its NIC
    holds all traffic (in and out) until the window closes.  Unlike a
    :class:`~repro.core.faults.NodeFailure` the node's memory survives
    and every held message is eventually delivered.
    """

    node: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class MemoryPressure:
    """A node's device-memory capacity shrinks over a time window.

    During ``[start, end)`` the node's effective capacity is its
    configured ``device_memory_bytes`` times ``capacity_factor`` — the
    tiered store (:mod:`repro.core.tiering`) sees the shrunken budget
    at its next planning decision and reacts with an eviction storm.
    ``fetch_fail_prob`` additionally makes read-through re-fetches
    *to* this node fail with that probability inside the window
    (retried with exponential backoff per ``mem_fetch_retries``);
    draws are deterministic per node via :func:`derive_rng`.
    """

    node: int
    start: float
    end: float = float("inf")
    capacity_factor: float = 1.0
    fetch_fail_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")
        if not 0.0 < self.capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        if not 0.0 <= self.fetch_fail_prob <= 1.0:
            raise ValueError("fetch_fail_prob must be in [0, 1]")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultPlan:
    """A declarative set of transient faults plus the seed driving them."""

    seed: int = 0
    losses: tuple[LinkLoss, ...] = ()
    degradations: tuple[LinkDegradation, ...] = ()
    stalls: tuple[NodeStall, ...] = ()
    hangs: tuple[NodeHang, ...] = ()
    pressures: tuple[MemoryPressure, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists for convenience; store tuples (the plan is frozen).
        for name in ("losses", "degradations", "stalls", "hangs",
                     "pressures"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def lossy(self) -> bool:
        """True if any link can drop messages (reliable transport needed)."""
        return any(rule.probability > 0 for rule in self.losses)

    def install(self, cluster) -> "ActiveFaults":
        """Bind this plan to a live cluster.

        Sets ``cluster.faults`` and ``cluster.network.faults`` and
        schedules a fair-share rebalance at every degradation-window
        edge so in-flight flows see bandwidth changes.
        """
        active = ActiveFaults(self, cluster)
        cluster.faults = active
        cluster.network.faults = active
        sim = cluster.sim
        for edge in active.edge_times():
            if edge < sim.now:
                continue
            timer = sim.timeout(edge - sim.now)
            timer.add_callback(
                lambda ev, net=cluster.network: net._rebalance()
            )
        return active


class ActiveFaults:
    """Runtime state of a :class:`FaultPlan` bound to one cluster.

    Consulted by the network layer (drops, degradation, hangs), the MPI
    transport (loss decisions), and the event system (compute
    stretching).  Loss draws use one RNG stream per directed link, so
    drop patterns are stable under unrelated traffic changes elsewhere.
    """

    def __init__(self, plan: FaultPlan, cluster):
        self.plan = plan
        self.cluster = cluster
        self._rngs: dict[tuple[int, int], object] = {}
        self._fetch_rngs: dict[int, object] = {}
        #: Messages the fabric has eaten so far (diagnostics / tests).
        self.dropped_messages = 0
        #: Read-through fetches the fabric has failed (diagnostics).
        self.fetch_failures = 0

    # -- message loss -----------------------------------------------------
    def loss_probability(self, src: int, dst: int) -> float:
        for rule in self.plan.losses:
            if rule.matches(src, dst):
                return rule.probability
        return 0.0

    def drops(self, src: int, dst: int) -> bool:
        """Decide (and record) whether the next ``src → dst`` message drops.

        Consumes one draw from the link's RNG stream per call, so the
        decision sequence on a link is a pure function of the seed and
        that link's message order.
        """
        p = self.loss_probability(src, dst)
        if p <= 0.0:
            return False
        rng = self._rngs.get((src, dst))
        if rng is None:
            rng = derive_rng(self.plan.seed, "loss", f"{src}->{dst}")
            self._rngs[(src, dst)] = rng
        if rng.random() < p:
            self.dropped_messages += 1
            return True
        return False

    # -- link degradation --------------------------------------------------
    def latency_factor(self, src: int, dst: int, now: float) -> float:
        factor = 1.0
        for window in self.plan.degradations:
            if window.active(now) and window.matches(src, dst):
                factor *= window.latency_factor
        return factor

    def bandwidth_factor(self, src: int, dst: int, now: float) -> float:
        factor = 1.0
        for window in self.plan.degradations:
            if window.active(now) and window.matches(src, dst):
                factor *= window.bandwidth_factor
        return factor

    def edge_times(self) -> list[float]:
        """Every time at which a degradation window opens or closes."""
        edges: set[float] = set()
        for window in self.plan.degradations:
            edges.add(window.start)
            edges.add(window.end)
        return sorted(edges)

    # -- hangs ----------------------------------------------------------------
    def hold_until(self, src: int, dst: int, now: float) -> float:
        """When the fabric may next move a ``src → dst`` message.

        A hung endpoint holds traffic until its window closes; the
        returned time is ``now`` when neither endpoint is hung.
        """
        release = now
        for hang in self.plan.hangs:
            if hang.node in (src, dst) and hang.active(now):
                release = max(release, hang.end)
        return release

    # -- memory pressure ------------------------------------------------------
    def capacity_factor(self, node: int, now: float) -> float:
        """The node's device-capacity multiplier at ``now`` (tiering)."""
        factor = 1.0
        for pressure in self.plan.pressures:
            if pressure.node == node and pressure.active(now):
                factor *= pressure.capacity_factor
        return factor

    def fetch_fails(self, node: int, now: float) -> bool:
        """Decide (and record) whether the next fetch to ``node`` fails.

        One RNG stream per node, so a node's fetch-failure sequence is
        a pure function of the seed and that node's fetch order.
        """
        prob = 0.0
        for pressure in self.plan.pressures:
            if pressure.node == node and pressure.active(now):
                prob = max(prob, pressure.fetch_fail_prob)
        if prob <= 0.0:
            return False
        rng = self._fetch_rngs.get(node)
        if rng is None:
            rng = derive_rng(self.plan.seed, "memfetch", str(node))
            self._fetch_rngs[node] = rng
        if rng.random() < prob:
            self.fetch_failures += 1
            return True
        return False

    # -- compute stretching ---------------------------------------------------
    def compute_rate(self, node: int, now: float) -> float:
        """The node's effective compute-rate multiplier at ``now``."""
        for hang in self.plan.hangs:
            if hang.node == node and hang.active(now):
                return 0.0
        rate = 1.0
        for stall in self.plan.stalls:
            if stall.node == node and stall.active(now):
                rate *= stall.factor
        return rate

    def stretched(self, node: int, start: float, duration: float) -> float:
        """Wall time for ``duration`` of nominal-rate work starting at
        ``start`` on ``node``, integrating stall/hang windows.

        Every window is bounded, so the rate is 1.0 past the last edge
        and the walk always terminates.
        """
        if duration <= 0:
            return duration
        edges: set[float] = set()
        for stall in self.plan.stalls:
            if stall.node == node:
                edges.update((stall.start, stall.end))
        for hang in self.plan.hangs:
            if hang.node == node:
                edges.update((hang.start, hang.end))
        t = start
        work = duration
        for edge in sorted(edges):
            if edge <= t:
                continue
            rate = self.compute_rate(node, t)
            if rate > 0:
                span = edge - t
                if work <= span * rate:
                    return t + work / rate - start
                work -= span * rate
            t = edge
        return t + work / self.compute_rate(node, t) - start
