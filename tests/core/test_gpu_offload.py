"""Tests for the §7 second-level (GPU) offloading extension."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, NodeSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_inout

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)

GPU_NODE = NodeSpec(accelerators=2, accelerator_speed=8.0,
                    pcie_bandwidth=16e9, pcie_latency=10e-6)


def gpu_cluster(n=3):
    return ClusterSpec(num_nodes=n, node=GPU_NODE)


def single_task_program(cost=0.8, nbytes=8_000, device="gpu"):
    prog = OmpProgram()
    data = np.zeros(nbytes // 8)
    A = prog.buffer(data.nbytes, data=data, name="A")
    prog.target_enter_data(A)
    prog.target(
        fn=lambda a: np.add(a, 1.0, out=a),
        depend=[depend_inout(A)], cost=cost, device=device, name="kernel",
    )
    prog.target_exit_data(A)
    return prog, data


class TestNodeSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"accelerators": -1},
            {"accelerator_speed": 0.0},
            {"pcie_bandwidth": 0.0},
            {"pcie_latency": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            NodeSpec(**kwargs)

    def test_no_gpu_resource_without_accelerators(self):
        from repro.cluster import Cluster

        cluster = Cluster(ClusterSpec(num_nodes=2))
        assert cluster.node(1).gpus is None
        cluster2 = Cluster(gpu_cluster(2))
        assert cluster2.node(1).gpus is not None
        assert cluster2.node(1).gpus.capacity == 2


class TestGpuExecution:
    def test_gpu_accelerates_compute(self):
        prog_gpu, d1 = single_task_program(device="gpu")
        gpu_res = OMPCRuntime(gpu_cluster(), FAST).run(prog_gpu)
        prog_cpu, d2 = single_task_program(device=None)
        cpu_res = OMPCRuntime(gpu_cluster(), FAST).run(prog_cpu)
        # 0.8 s kernel: ~0.1 s on the 8x accelerator vs 0.8 s on cores.
        assert gpu_res.makespan < cpu_res.makespan / 4
        np.testing.assert_allclose(d1, d2)

    def test_counters(self):
        prog, _ = single_task_program()
        res = OMPCRuntime(gpu_cluster(), FAST).run(prog)
        assert res.counters.get("ompc.gpu_executions", 0) == 1

    def test_falls_back_to_cpu_without_accelerator(self):
        # device="gpu" on a GPU-less cluster: regular core execution
        # (the OpenMP fallback semantics of §2).
        prog, data = single_task_program(cost=0.4)
        res = OMPCRuntime(ClusterSpec(num_nodes=3), FAST).run(prog)
        assert res.counters.get("ompc.gpu_executions", 0) == 0
        assert res.makespan == pytest.approx(0.4, rel=0.05)
        np.testing.assert_allclose(data, np.ones_like(data))

    def test_pcie_staging_charged(self):
        # 1.6 GB buffer over 16 GB/s PCIe: ~0.1 s in + ~0.1 s out
        # dominates the accelerated 12.5 ms kernel.
        prog = OmpProgram()
        A = prog.buffer(1.6e9, name="big")
        prog.target_enter_data(A)
        prog.target(depend=[depend_inout(A)], cost=0.1, device="gpu")
        res = OMPCRuntime(gpu_cluster(), FAST).run(prog)
        kernel_time = 0.1 / 8.0
        pcie_time = 2 * 1.6e9 / 16e9
        # Ignore the cluster-fabric submit (~0.13 s) by checking the
        # task interval, not the makespan.
        task_iv = [
            end - start for start, end in res.task_intervals.values()
        ]
        assert max(task_iv) >= kernel_time + pcie_time

    def test_gpu_contention_serializes(self):
        # 4 concurrent GPU kernels, 2 accelerators: two waves.
        prog = OmpProgram()
        for i in range(4):
            b = prog.buffer(8, name=f"b{i}")
            prog.target(depend=[depend_inout(b)], cost=0.8, device="gpu",
                        name=f"k{i}")
        spec = ClusterSpec(num_nodes=2, node=GPU_NODE)  # one worker
        res = OMPCRuntime(spec, FAST).run(prog)
        assert res.makespan == pytest.approx(2 * 0.8 / 8.0, rel=0.1)

    def test_mixed_cpu_gpu_program(self):
        prog = OmpProgram()
        data = np.zeros(16)
        A = prog.buffer(data.nbytes, data=data, name="A")
        prog.target_enter_data(A)
        prog.target(fn=lambda a: np.add(a, 1, out=a),
                    depend=[depend_inout(A)], cost=0.1, device="gpu")
        prog.target(fn=lambda a: np.multiply(a, 3, out=a),
                    depend=[depend_inout(A)], cost=0.1)  # CPU
        prog.target_exit_data(A)
        res = OMPCRuntime(gpu_cluster(), FAST).run(prog)
        assert res.counters.get("ompc.gpu_executions", 0) == 1
        np.testing.assert_allclose(data, np.full(16, 3.0))
