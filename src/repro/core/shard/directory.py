"""Shard ownership: who owns each task and buffer of the graph.

The sharded control plane partitions the *control* of the task graph
across K shard managers.  The :class:`ShardDirectory` is the pure
(clock-free, deterministic) assignment underneath it: every task and
every buffer has exactly one owning shard, computed once before the
simulation starts, by a pluggable :class:`PartitionPolicy`.

Two policies ship:

* :class:`ConsistentHashPolicy` (``shard_policy="hash"``) — a classic
  consistent-hash ring with virtual nodes, keyed on the task's affinity
  key.  The hash is SHA-based (``repro.util.rng`` style), *not*
  Python's randomized ``hash()``, so ownership is stable across
  processes and seeds.
* :class:`BlockPolicy` (``shard_policy="block"``) — contiguous blocks
  over the sorted distinct affinity keys, the layout that minimizes
  cross-shard edges on neighbor-structured graphs (stencils).

Affinity keys come from ``task.meta["affinity"]`` (the Task Bench port
tags every task with its grid point), falling back to the task id.
Keying on affinity — not on the task id — keeps each logical chain
(every generation of one stencil point) on one shard, so the only
cross-shard dependences are the graph's true neighbor edges.

§4.4 adaptation rules override the policy where semantics demand it:
``CLASSICAL`` and ``target exit data`` tasks run against host memory
and belong to shard 0 (whose manager is the host node); a ``target
enter data`` task follows its first non-data consumer, exactly like
:meth:`~repro.core.scheduler.base.Scheduler.pin_special_tasks` co-
locates them at node level.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Hashable, Protocol

from repro.omp.task import Task, TaskKind
from repro.omp.taskgraph import TaskGraph


def stable_hash(key: Hashable, salt: str = "") -> int:
    """A process-stable 64-bit hash (Python's ``hash()`` is randomized)."""
    blob = f"{salt}\x1f{key!r}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


class PartitionPolicy(Protocol):
    """The pluggable graph-partition hook of the shard directory."""

    def prepare(self, keys: list[Hashable]) -> None:
        """Observe the distinct affinity keys before any lookup."""

    def shard_of(self, key: Hashable) -> int:
        """The owning shard of one affinity key."""


class ConsistentHashPolicy:
    """Consistent hashing with ``replicas`` virtual points per shard.

    Adding or removing one shard remaps only ~1/K of the key space —
    the property that makes hash ownership the default for elastic
    shard counts (ROADMAP: elastic re-sharding rides on this).
    """

    def __init__(self, num_shards: int, replicas: int = 64):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.num_shards = num_shards
        points = []
        for shard in range(num_shards):
            for v in range(replicas):
                points.append((stable_hash(f"s{shard}v{v}", "ring"), shard))
        points.sort()
        self._ring = [p for p, _s in points]
        self._owner = [s for _p, s in points]

    def prepare(self, keys: list[Hashable]) -> None:  # pragma: no cover
        pass  # the ring is key-independent

    def shard_of(self, key: Hashable) -> int:
        h = stable_hash(key, "key")
        i = bisect_right(self._ring, h) % len(self._ring)
        return self._owner[i]


class BlockPolicy:
    """Contiguous blocks of sorted affinity keys, one block per shard."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._block: dict[Hashable, int] = {}

    def prepare(self, keys: list[Hashable]) -> None:
        ordered = sorted(keys, key=lambda k: (str(type(k)), str(k)))
        n = len(ordered)
        for i, key in enumerate(ordered):
            self._block[key] = min(i * self.num_shards // max(n, 1),
                                   self.num_shards - 1)

    def shard_of(self, key: Hashable) -> int:
        shard = self._block.get(key)
        if shard is None:  # a key never prepared: hash it stably
            return stable_hash(key, "blockfall") % self.num_shards
        return shard


def make_partition_policy(name: str, num_shards: int) -> PartitionPolicy:
    if name == "hash":
        return ConsistentHashPolicy(num_shards)
    if name == "block":
        return BlockPolicy(num_shards)
    raise ValueError(f"unknown shard policy {name!r}")


class ShardDirectory:
    """Task + buffer ownership across K shards, computed eagerly.

    ``owner_of(task_id)`` / ``buffer_owner(buffer_id)`` are O(1) dict
    lookups during the run; the cross-shard edge set (the dependences
    the lease/notify protocol must cover) is precomputed too.
    """

    def __init__(
        self,
        graph: TaskGraph,
        num_shards: int,
        policy: PartitionPolicy | str = "hash",
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if isinstance(policy, str):
            policy = make_partition_policy(policy, num_shards)
        self.graph = graph
        self.num_shards = num_shards
        self.policy = policy

        keys = sorted(
            {self._key(t) for t in graph.tasks()},
            key=lambda k: (str(type(k)), str(k)),
        )
        policy.prepare(keys)

        self._task_owner: dict[int, int] = {}
        for task in graph.tasks():
            self._task_owner[task.task_id] = self._assign(task)
        # Enter-data tasks follow their first non-data consumer so the
        # staging work is controlled by the shard that will use it.
        for task in graph.tasks():
            if task.kind != TaskKind.TARGET_ENTER_DATA:
                continue
            owner = 0
            for succ in graph.successors(task):
                if not succ.kind.is_data_movement:
                    owner = self._task_owner[succ.task_id]
                    break
            self._task_owner[task.task_id] = owner

        #: A buffer belongs to the shard of the first task touching it.
        self._buffer_owner: dict[int, int] = {}
        for task in graph.tasks():
            owner = self._task_owner[task.task_id]
            for buf in task.touched:
                self._buffer_owner.setdefault(buf.buffer_id, owner)

        #: Dependence edges whose endpoints live on different shards:
        #: ``(producer_id, consumer_id, producer_shard, consumer_shard)``.
        self.cross_edges: list[tuple[int, int, int, int]] = []
        for pred, succ in graph.edges():
            sp = self._task_owner[pred.task_id]
            sc = self._task_owner[succ.task_id]
            if sp != sc:
                self.cross_edges.append(
                    (pred.task_id, succ.task_id, sp, sc)
                )

    # ------------------------------------------------------------------
    def _key(self, task: Task) -> Hashable:
        affinity = task.meta.get("affinity")
        return affinity if affinity is not None else task.task_id

    def _assign(self, task: Task) -> int:
        # Host-memory tasks belong to the host shard regardless of key.
        if task.kind in (TaskKind.CLASSICAL, TaskKind.TARGET_EXIT_DATA):
            return 0
        return self.policy.shard_of(self._key(task)) % self.num_shards

    # ------------------------------------------------------------------
    def owner_of(self, task_id: int) -> int:
        return self._task_owner[task_id]

    def buffer_owner(self, buffer_id: int) -> int:
        return self._buffer_owner[buffer_id]

    def tasks_of(self, shard: int) -> list[Task]:
        """The shard's tasks, in program order."""
        return [
            t for t in self.graph.tasks()
            if self._task_owner[t.task_id] == shard
        ]

    def subgraph(self, shard: int) -> TaskGraph:
        """The shard-local task graph: owned tasks, intra-shard edges.

        This is what the shard's private scheduler instance sees; the
        cross-shard edges it cannot see are exactly the ones the
        lease/notify protocol serializes at runtime.
        """
        sub = TaskGraph()
        for task in self.tasks_of(shard):
            sub.add_task(task)
        for pred, succ in self.graph.edges():
            if (
                self._task_owner[pred.task_id] == shard
                and self._task_owner[succ.task_id] == shard
            ):
                sub.add_edge(pred, succ)
        return sub

    def lease_needs(self) -> dict[int, set[int]]:
        """Per consumer shard: the remote producer task ids it must
        subscribe to (one lease per (shard, producer), not per edge)."""
        needs: dict[int, set[int]] = {
            s: set() for s in range(self.num_shards)
        }
        for pid, _cid, _sp, sc in self.cross_edges:
            needs[sc].add(pid)
        return needs

    def stats(self) -> dict[str, float]:
        sizes = [len(self.tasks_of(s)) for s in range(self.num_shards)]
        total = max(sum(sizes), 1)
        return {
            "shards": float(self.num_shards),
            "tasks": float(sum(sizes)),
            "cross_edges": float(len(self.cross_edges)),
            "largest_shard_frac": max(sizes) / total,
        }
