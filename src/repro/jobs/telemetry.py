"""Cluster-level telemetry for multi-tenant runs.

The :func:`build_report` snapshot turns a
:class:`~repro.jobs.manager.JobManager`'s state into the standard
batch-scheduling numbers: per-job turnaround/wait/slowdown rows, the
queue-depth profile (from the ``jobs.queue_depth`` gauge the manager
maintains), and cluster utilization — busy node-seconds over the pool's
node-seconds across the makespan horizon.  These are the quantities the
backfill ablation compares across admission policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jobs.job import Job, JobState


@dataclass(frozen=True)
class JobRecord:
    """One job's immutable summary row."""

    job_id: int
    name: str
    tenant: str
    nodes: int
    state: str
    submit_time: float
    start_time: float | None
    finish_time: float | None
    wait_time: float | None
    run_time: float | None
    turnaround: float | None
    slowdown: float | None
    bounded_slowdown: float | None
    backfilled: bool
    requeues: int
    attempts: int
    error: str | None = None


@dataclass(frozen=True)
class JobsReport:
    """Aggregate view of everything the manager scheduled."""

    records: tuple[JobRecord, ...]
    policy: str
    #: First submission → last terminal event (the scheduling horizon).
    horizon: float
    #: Allocatable worker nodes at report time (retired nodes excluded).
    pool_nodes: int
    #: Busy node-seconds / (pool_nodes × horizon) — space-shared
    #: cluster utilization.
    utilization: float
    queue_depth_avg: float
    queue_depth_max: float
    mean_wait: float
    mean_turnaround: float
    mean_slowdown: float
    mean_bounded_slowdown: float
    #: Completed jobs per simulated second of horizon.
    throughput: float
    completed: int
    failed: int
    requeued: int
    backfilled: int
    #: Overload-protection outcomes (all zero for the base manager).
    shed: int = 0
    dead_lettered: int = 0
    preempted: int = 0
    #: Jobs not yet terminal at report time (accounting identity:
    #: completed + failed + shed + dead_lettered + running == total).
    running: int = 0
    #: Nearest-rank p99 of completed jobs' bounded slowdown.
    p99_bounded_slowdown: float = 0.0
    #: Configured p99 bounded-slowdown SLO (inf/None when unset).
    slo_bounded_slowdown: float | None = None
    #: Fraction of *admitted, finished* jobs within the SLO bound.
    slo_attainment: float = 1.0
    shed_fraction: float = 0.0
    dead_letter_fraction: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def total_jobs(self) -> int:
        return len(self.records)

    @property
    def accounted(self) -> int:
        """Every submitted job lands in exactly one bucket; this must
        always equal :attr:`total_jobs` (the no-silent-loss identity)."""
        return (self.completed + self.failed + self.shed
                + self.dead_lettered + self.running)


def _record(job: Job, tau: float) -> JobRecord:
    return JobRecord(
        job_id=job.job_id,
        name=job.spec.name,
        tenant=job.spec.tenant,
        nodes=job.spec.nodes,
        state=job.state.value,
        submit_time=job.submit_time,
        start_time=job.start_time,
        finish_time=job.finish_time,
        wait_time=job.wait_time,
        run_time=job.run_time,
        turnaround=job.turnaround,
        slowdown=job.slowdown,
        bounded_slowdown=job.bounded_slowdown(tau),
        backfilled=job.backfilled,
        requeues=job.requeues,
        attempts=job.attempts,
        error=job.error,
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _p99(values: list[float]) -> float:
    """Nearest-rank 99th percentile (exact, deterministic)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * 99 // 100))  # ceil(0.99 n)
    return ordered[rank - 1]


def build_report(manager) -> JobsReport:
    """Snapshot the manager's telemetry (see :class:`JobsReport`)."""
    tau = manager.slowdown_tau
    records = tuple(_record(job, tau) for job in manager.jobs)
    t0 = manager._first_submit if manager._first_submit is not None else 0.0
    ends = [r.finish_time for r in records if r.finish_time is not None]
    t1 = max(ends) if ends else manager.sim.now
    horizon = max(t1 - t0, 0.0)
    pool_nodes = manager.pool.capacity
    # An elastic pool's size varies over the run; utilization divides
    # by the time-averaged online capacity (the autoscaler maintains
    # the gauge), falling back to the final capacity for static pools.
    online = manager.obs.metrics.gauges.get("jobs.pool_online")
    avg_nodes = online.time_average(t0, t1) if online is not None else 0.0
    denom = (avg_nodes if avg_nodes > 0 else pool_nodes) * horizon
    utilization = manager.busy_node_seconds / denom if denom > 0 else 0.0

    depth = manager.obs.metrics.gauges.get("jobs.queue_depth")
    queue_avg = depth.time_average(t0, t1) if depth is not None else 0.0
    queue_max = depth.maximum() if depth is not None else 0.0

    completed = [r for r in records if r.state == JobState.COMPLETED.value]
    failed = [r for r in records if r.state == JobState.FAILED.value]
    shed = [r for r in records if r.state == JobState.SHED.value]
    dead = [r for r in records if r.state == JobState.DEAD_LETTERED.value]
    running = [
        r for r in records
        if r.state in (JobState.PENDING.value, JobState.RUNNING.value)
    ]
    counters = {
        name: counter.value
        for name, counter in manager.obs.metrics.counters.items()
        if name.startswith("jobs.")
    }

    slowdowns = [r.bounded_slowdown for r in completed
                 if r.bounded_slowdown is not None]
    p99 = _p99(slowdowns)
    slo = getattr(manager, "slo_bounded_slowdown", None)
    if slo is not None and slo != float("inf") and slowdowns:
        attainment = sum(1 for s in slowdowns if s <= slo) / len(slowdowns)
    else:
        attainment = 1.0
    total = len(records)
    return JobsReport(
        records=records,
        policy=manager.policy.name,
        horizon=horizon,
        pool_nodes=pool_nodes,
        utilization=utilization,
        queue_depth_avg=queue_avg,
        queue_depth_max=queue_max,
        mean_wait=_mean([r.wait_time for r in completed
                         if r.wait_time is not None]),
        mean_turnaround=_mean([r.turnaround for r in completed
                               if r.turnaround is not None]),
        mean_slowdown=_mean([r.slowdown for r in completed
                             if r.slowdown is not None]),
        mean_bounded_slowdown=_mean([r.bounded_slowdown for r in completed
                                     if r.bounded_slowdown is not None]),
        throughput=len(completed) / horizon if horizon > 0 else 0.0,
        completed=len(completed),
        failed=len(failed),
        requeued=sum(r.requeues for r in records),
        backfilled=sum(1 for r in records if r.backfilled),
        shed=len(shed),
        dead_lettered=len(dead),
        preempted=int(counters.get("jobs.preempted", 0)),
        running=len(running),
        p99_bounded_slowdown=p99,
        slo_bounded_slowdown=(
            None if slo is None or slo == float("inf") else slo
        ),
        slo_attainment=attainment,
        shed_fraction=len(shed) / total if total else 0.0,
        dead_letter_fraction=len(dead) / total if total else 0.0,
        counters=counters,
    )


def format_jobs_report(report: JobsReport, per_job: bool = True) -> str:
    """Human-readable report (summary block plus optional per-job table)."""
    from repro.bench.report import format_table

    lines = [
        f"policy={report.policy}  jobs={report.total_jobs} "
        f"(completed={report.completed} failed={report.failed} "
        f"requeued={report.requeued} backfilled={report.backfilled})",
    ]
    if report.shed or report.dead_lettered or report.preempted:
        slo = ("—" if report.slo_bounded_slowdown is None
               else f"{report.slo_bounded_slowdown:g}")
        lines.append(
            f"overload: shed={report.shed} "
            f"({report.shed_fraction * 100:.1f}%) "
            f"dead-lettered={report.dead_lettered} "
            f"({report.dead_letter_fraction * 100:.1f}%) "
            f"preemptions={report.preempted} — "
            f"p99 b.slowdown {report.p99_bounded_slowdown:.2f} "
            f"(SLO {slo}, attainment {report.slo_attainment * 100:.1f}%)"
        )
    lines += [
        f"horizon {report.horizon:.4f} s on {report.pool_nodes} nodes — "
        f"utilization {report.utilization * 100:.1f}%, "
        f"throughput {report.throughput:.2f} jobs/s",
        f"queue depth avg {report.queue_depth_avg:.2f} "
        f"max {report.queue_depth_max:.0f}",
        f"mean wait {report.mean_wait:.4f} s, "
        f"turnaround {report.mean_turnaround:.4f} s, "
        f"slowdown {report.mean_slowdown:.2f}, "
        f"bounded slowdown {report.mean_bounded_slowdown:.2f}",
    ]
    if per_job:
        rows = []
        for r in report.records:
            rows.append([
                r.job_id, r.name, r.tenant, r.nodes, r.state,
                f"{r.submit_time:.4f}",
                "—" if r.wait_time is None else f"{r.wait_time:.4f}",
                "—" if r.run_time is None else f"{r.run_time:.4f}",
                "—" if r.bounded_slowdown is None
                else f"{r.bounded_slowdown:.2f}",
                "bf" if r.backfilled else "",
            ])
        lines.append(format_table(
            ["id", "job", "tenant", "nodes", "state", "submit",
             "wait (s)", "run (s)", "b.slowdown", ""],
            rows,
            title=f"per-job schedule ({report.policy})",
        ))
    return "\n".join(lines)
