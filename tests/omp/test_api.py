"""Tests for the OmpProgram builder (Listing 1 semantics)."""

import numpy as np
import pytest

from repro.omp import OmpProgram, TaskKind
from repro.omp.task import depend_in, depend_inout, depend_out


class TestListing1:
    """The paper's Listing 1 must produce the Figure 1 task chain."""

    def test_chain_structure(self):
        prog = OmpProgram("listing1")
        A = prog.buffer(nbytes=1000 * 8, name="A")
        enter = prog.target_enter_data(A)
        foo = prog.target(depend=[depend_inout(A)], cost=0.05, name="foo")
        bar = prog.target(depend=[depend_inout(A)], cost=0.05, name="bar")
        exit_ = prog.target_exit_data(A)

        g = prog.graph
        assert g.successors(enter) == [foo]
        assert g.successors(foo) == [bar]
        assert g.successors(bar) == [exit_]
        assert g.num_edges == 3
        prog.validate()

    def test_task_kinds(self):
        prog = OmpProgram()
        A = prog.buffer(8)
        enter = prog.target_enter_data(A)
        t = prog.target(depend=[depend_inout(A)])
        cls = prog.task(cost=0.0)
        exit_ = prog.target_exit_data(A)
        assert enter.kind == TaskKind.TARGET_ENTER_DATA
        assert t.kind == TaskKind.TARGET
        assert cls.kind == TaskKind.CLASSICAL
        assert exit_.kind == TaskKind.TARGET_EXIT_DATA
        assert prog.target_tasks() == [t]


class TestValidation:
    def test_undeclared_buffer_rejected(self):
        from repro.omp import Buffer

        prog = OmpProgram()
        rogue = Buffer(8)  # not declared via prog.buffer()
        prog.target(depend=[depend_in(rogue)])
        with pytest.raises(ValueError, match="undeclared buffer"):
            prog.validate()

    def test_in_plus_out_on_one_buffer_rejected(self):
        prog = OmpProgram()
        A = prog.buffer(8, name="A")
        prog.target(depend=[depend_in(A), depend_out(A)])
        with pytest.raises(ValueError, match="use depend\\(inout\\)"):
            prog.validate()

    def test_inout_spelling_accepted(self):
        prog = OmpProgram()
        A = prog.buffer(8, name="A")
        prog.target(depend=[depend_inout(A)])
        prog.validate()

    def test_undeclared_access_buffer_rejected(self):
        from repro.omp import Buffer

        prog = OmpProgram()
        A = prog.buffer(8, name="A")
        rogue = Buffer(8, name="rogue")
        prog.target(depend=[depend_in(A)], accesses=(depend_in(rogue),))
        with pytest.raises(ValueError, match="accesses undeclared buffer"):
            prog.validate()

    def test_enter_data_requires_buffers(self):
        prog = OmpProgram()
        with pytest.raises(ValueError):
            prog.target_enter_data()
        with pytest.raises(ValueError):
            prog.target_exit_data()

    def test_meta_carried(self):
        prog = OmpProgram()
        t = prog.target(cost=1.0, point=(3, 4))
        assert t.meta == {"point": (3, 4)}


class TestHostRuntime:
    def test_serial_chain_accumulates_cost(self):
        from repro.omp.host import HostRuntime

        prog = OmpProgram()
        A = prog.buffer(8)
        prog.target_enter_data(A)
        prog.target(depend=[depend_inout(A)], cost=1.0)
        prog.target(depend=[depend_inout(A)], cost=2.0)
        prog.target_exit_data(A)
        result = HostRuntime(num_threads=4).run(prog)
        assert result.makespan == pytest.approx(3.0)
        assert result.num_tasks == 4

    def test_independent_tasks_run_in_parallel(self):
        from repro.omp.host import HostRuntime

        prog = OmpProgram()
        bufs = [prog.buffer(8) for _ in range(4)]
        for b in bufs:
            prog.target(depend=[depend_out(b)], cost=1.0)
        result = HostRuntime(num_threads=4).run(prog)
        assert result.makespan == pytest.approx(1.0)

    def test_thread_limit_serializes(self):
        from repro.omp.host import HostRuntime

        prog = OmpProgram()
        bufs = [prog.buffer(8) for _ in range(4)]
        for b in bufs:
            prog.target(depend=[depend_out(b)], cost=1.0)
        result = HostRuntime(num_threads=2).run(prog)
        assert result.makespan == pytest.approx(2.0)

    def test_functions_actually_execute(self):
        from repro.omp.host import HostRuntime

        prog = OmpProgram()
        data = np.zeros(4)
        A = prog.buffer(data.nbytes, data=data, name="A")
        prog.target_enter_data(A)
        prog.target(
            fn=lambda a: np.add(a, 1.0, out=a),
            depend=[depend_inout(A)],
            cost=0.01,
        )
        prog.target(
            fn=lambda a: np.multiply(a, 2.0, out=a),
            depend=[depend_inout(A)],
            cost=0.01,
        )
        prog.target_exit_data(A)
        HostRuntime(num_threads=2).run(prog)
        np.testing.assert_allclose(data, np.full(4, 2.0))

    def test_faster_node_speeds_up(self):
        from repro.omp.host import HostRuntime

        prog = OmpProgram()
        A = prog.buffer(8)
        prog.target(depend=[depend_inout(A)], cost=4.0)
        result = HostRuntime(num_threads=1, speed=2.0).run(prog)
        assert result.makespan == pytest.approx(2.0)

    def test_empty_program(self):
        from repro.omp.host import HostRuntime

        result = HostRuntime().run(OmpProgram())
        assert result.makespan == 0.0

    def test_invalid_thread_count(self):
        from repro.omp.host import HostRuntime

        with pytest.raises(ValueError):
            HostRuntime(num_threads=0)
