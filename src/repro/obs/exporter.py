"""Perfetto / Chrome ``chrome://tracing`` export of observer data.

Layout: every cluster node becomes one trace *process* (``pid`` =
node id, named ``node0 (head)``, ``node1``, ...).  Within a node, each
span category owns a block of *threads* (``tid`` lanes) sized by greedy
interval packing, so concurrent spans never overlap on one lane — the
fix for the seed exporter that put every span on ``tid`` 0.  Message
flows become Perfetto arrows (``ph: "s"``/``"f"`` pairs) from the send
span to the receive instant, and every gauge becomes a counter track
(``ph: "C"``) under its node's process.

Load the result in https://ui.perfetto.dev or ``chrome://tracing``::

    json.dump({"traceEvents": to_chrome_trace(obs)}, open("trace.json", "w"))
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer

#: Category → lane-block ordering inside one process.
_CAT_ORDER = {"task": 0, "sched": 1, "data": 2, "mpi": 3, "ompc": 4}

_US = 1e6  # trace timestamps are microseconds


def pack_lanes(intervals: list[tuple[float, float]]) -> list[int]:
    """Greedy interval partitioning: a lane index per interval.

    Intervals are considered in ``(start, end)`` order; each goes to the
    first lane whose previous occupant has already finished, so two
    overlapping intervals never share a lane and the lane count equals
    the maximum concurrency.  Returns lanes in input order.
    """
    lanes = [0] * len(intervals)
    order = sorted(range(len(intervals)), key=lambda i: (intervals[i][0], intervals[i][1], i))
    lane_ends: list[float] = []
    for i in order:
        start, end = intervals[i]
        for lane, lane_end in enumerate(lane_ends):
            if lane_end <= start:
                lane_ends[lane] = end
                lanes[i] = lane
                break
        else:
            lanes[i] = len(lane_ends)
            lane_ends.append(end)
    return lanes


def to_chrome_trace(observer: "Observer", head_node: int = 0) -> list[dict]:
    """Serialize an observer's spans, flows, and gauges to trace events."""
    events: list[dict] = []

    # -- spans, grouped into per-(node, category) lane blocks ------------
    groups: dict[tuple[int, str], list] = {}
    for span in observer.spans:
        groups.setdefault((span.node, span.cat), []).append(span)

    lane_names: dict[tuple[int, int], str] = {}
    next_tid: dict[int, int] = {}
    for node, cat in sorted(groups, key=lambda k: (k[0], _CAT_ORDER.get(k[1], 99), k[1])):
        spans = groups[(node, cat)]
        lanes = pack_lanes([(s.start, s.end) for s in spans])
        base = next_tid.get(node, 0)
        for lane in range(max(lanes) + 1):
            lane_names[(node, base + lane)] = f"{cat}/{lane}"
        next_tid[node] = base + max(lanes) + 1
        for span, lane in zip(spans, lanes):
            tid = base + lane
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": span.duration * _US,
                    "pid": span.node,
                    "tid": tid,
                    "args": dict(span.args),
                }
            )
            if span.flow_id is not None:
                if span.flow_phase == "s":
                    # Bind the arrow tail inside the send span.
                    events.append(
                        {
                            "name": "msg",
                            "cat": f"{span.cat}.flow",
                            "ph": "s",
                            "id": span.flow_id,
                            "ts": (span.start + span.end) / 2 * _US,
                            "pid": span.node,
                            "tid": tid,
                        }
                    )
                elif span.flow_phase == "f":
                    events.append(
                        {
                            "name": "msg",
                            "cat": f"{span.cat}.flow",
                            "ph": "f",
                            "bp": "e",
                            "id": span.flow_id,
                            "ts": span.start * _US,
                            "pid": span.node,
                            "tid": tid,
                        }
                    )

    # -- gauges as counter tracks ----------------------------------------
    for gauge in observer.metrics.gauges.values():
        for t, value in gauge.samples:
            events.append(
                {
                    "name": gauge.name,
                    "ph": "C",
                    "ts": t * _US,
                    "pid": gauge.node,
                    "tid": 0,
                    "args": {"value": value},
                }
            )

    # -- process / thread metadata ---------------------------------------
    nodes = {pid for pid, _cat in groups}
    nodes.update(g.node for g in observer.metrics.gauges.values())
    for node in sorted(nodes):
        name = f"node{node} (head)" if node == head_node else f"node{node}"
        events.append(
            {"name": "process_name", "ph": "M", "ts": 0, "pid": node, "tid": 0,
             "args": {"name": name}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "ts": 0, "pid": node,
             "tid": 0, "args": {"sort_index": node}}
        )
    for (node, tid), lane_name in sorted(lane_names.items()):
        events.append(
            {"name": "thread_name", "ph": "M", "ts": 0, "pid": node, "tid": tid,
             "args": {"name": lane_name}}
        )
    return events


_KNOWN_PHASES = {"X", "B", "E", "I", "i", "s", "t", "f", "C", "M"}


def validate_chrome_trace(events: list[dict]) -> list[str]:
    """Check events against the Chrome trace schema; returns problems.

    An empty list means the trace is loadable.  Used by the CI
    ``trace-smoke`` step to fail on exporter regressions.
    """
    problems: list[str] = []
    for i, event in enumerate(events):
        where = f"event {i} ({event.get('name', '?')!r})"
        ph = event.get("ph")
        if ph is None:
            problems.append(f"{where}: missing 'ph'")
            continue
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        if "ts" not in event:
            problems.append(f"{where}: missing 'ts'")
        elif not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append(f"{where}: bad 'ts' {event['ts']!r}")
        if "pid" not in event:
            problems.append(f"{where}: missing 'pid'")
        if ph == "X":
            if "tid" not in event:
                problems.append(f"{where}: complete event missing 'tid'")
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs 'dur' >= 0")
        if ph in ("s", "t", "f") and "id" not in event:
            problems.append(f"{where}: flow event missing 'id'")
    return problems
