"""The MPI-based distributed event system (§4.2, Fig. 3).

Events are logical units that encapsulate multiple MPI messages.  Every
event has an *origin* half (usually on the head node) and a
*destination* half (on a worker).  The flow mirrors Fig. 3:

1. the origin thread creates the event, drawing a unique MPI tag from
   its :class:`~repro.core.tags.TagAllocator` and selecting a data
   communicator from the round-robin pool by tag;
2. a small *new-event notification* goes to the destination process on
   the control communicator;
3. the destination's **gate thread** receives the notification and
   enqueues the destination half into the local event queue;
4. one of the **event handlers** dequeues it and executes it,
   exchanging payload messages with the origin on ``(comm, tag)`` —
   the tag plus the rank pair form an exclusive channel;
5. a completion notification unblocks the origin.

Event types map one-to-one to the functions a libomptarget device
plugin must implement (§4.2): memory allocation and removal, data
submission and retrieval, indirect worker-to-worker forwarding, and
target-region execution.  ``BROADCAST`` implements the §7 one-to-many
extension; ``EXIT`` tears the system down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.hooks import NULL_ANALYSIS
from repro.cluster.machine import Cluster
from repro.core.config import OMPCConfig
from repro.core.memory import DeviceMemory
from repro.core.tags import NOTIFY_TAG, TagAllocator
from repro.mpi.comm import Communicator, MpiWorld
from repro.mpi.vci import CommunicatorPool
from repro.omp.task import Task
from repro.sim.resources import Store


class EventType(enum.Enum):
    """Actions the event system can perform between nodes."""

    ALLOC = "alloc"
    DELETE = "delete"
    SUBMIT = "submit"
    RETRIEVE = "retrieve"
    EXCHANGE_SRC = "exchange_src"
    EXCHANGE_DST = "exchange_dst"
    EXECUTE = "execute"
    BROADCAST = "broadcast"
    EXIT = "exit"


@dataclass(frozen=True)
class Notification:
    """The new-event notification delivered to a gate thread."""

    event_type: EventType
    tag: int
    origin: int
    info: dict = field(default_factory=dict)


#: Queue sentinel shutting down one event handler.
_POISON = object()

#: Interned per-type counter keys for the handler hot loop.
_EVENT_COUNT_KEY = {t: f"ompc.events.{t.value}" for t in EventType}


class EventSystem:
    """Event machinery across all cluster nodes plus the origin API.

    The head node (rank ``origin``, default 0) drives workers through
    the origin-side generator methods (:meth:`alloc`, :meth:`submit`,
    :meth:`retrieve`, :meth:`exchange`, :meth:`execute`, ...).  Gate
    threads and handler pools run on every node.
    """

    def __init__(
        self,
        cluster: Cluster,
        mpi: MpiWorld,
        config: OMPCConfig,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.mpi = mpi
        self.config = config
        self.trace = cluster.trace
        #: Observability sink, captured at construction (install via
        #: ``Cluster.install_observer`` before building the system).
        self.obs = cluster.obs
        #: Correctness-analysis sink, captured likewise (install via
        #: ``Cluster.install_analysis`` before building the system).
        self.analysis = getattr(cluster, "analysis", NULL_ANALYSIS)

        #: Control communicator carrying notifications only.
        self.control: Communicator = mpi.new_communicator()
        #: Data communicators, selected round-robin by event tag (VCIs).
        self.pool = CommunicatorPool(mpi, config.num_comms)
        self.tags = TagAllocator()
        #: Per-node mapped-buffer tables (the "device memory").
        capacity = config.device_memory_bytes or None
        self.memories = [
            DeviceMemory(i, capacity_bytes=capacity)
            for i in range(cluster.num_nodes)
        ]

        self._queues = [
            Store(self.sim, name=f"evq{i}") for i in range(cluster.num_nodes)
        ]
        self._gates: list = []
        self._handlers: dict[int, list] = {}
        self._started = False
        self._first_event_done = False
        self._failed: set[int] = set()
        self._failure_events: dict[int, object] = {}
        #: (task_id, attempt) pairs whose kernel launch was revoked
        #: (straggler speculation: the other attempt already won).
        self._cancelled_execs: set[tuple[int, int]] = set()
        #: Per-node idempotence state for head failover: task ids this
        #: node already executed (dedup table), EXECUTEs currently
        #: running (so a re-issued dispatch serializes behind the
        #: original instead of double-applying an in-place kernel), and
        #: the newest head epoch seen (fences zombie dispatches from a
        #: deposed head).
        n = cluster.num_nodes
        self._exec_done: list[set[int]] = [set() for _ in range(n)]
        self._exec_inflight: list[dict[int, Any]] = [{} for _ in range(n)]
        self._node_epoch: list[int] = [0] * n

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn gate threads and handler pools on every node."""
        if self._started:
            raise RuntimeError("event system already started")
        self._started = True
        for node_id in range(self.cluster.num_nodes):
            gate = self.sim.process(self._gate(node_id), name=f"gate{node_id}")
            self._gates.append(gate)
            self._handlers[node_id] = [
                self.sim.process(
                    self._handler(node_id, h), name=f"handler{node_id}.{h}"
                )
                for h in range(self.config.event_handlers)
            ]

    def shutdown(self, origin: int = 0):
        """Generator: stop all gate threads and handlers.

        All in-flight events must already be complete (the runtime waits
        for the task graph before shutting down).  Failed nodes are
        skipped — their machinery is already dead.
        """
        rank = self.control.rank(origin)
        for node_id in range(self.cluster.num_nodes):
            if node_id in self._failed:
                continue
            note = Notification(EventType.EXIT, 0, origin)
            yield from rank.send(
                node_id, note, self.config.notification_bytes, NOTIFY_TAG
            )
        for node_id, gate in enumerate(self._gates):
            if node_id in self._failed:
                continue
            yield gate  # gates forward poison to handlers and finish

    # ------------------------------------------------------------------
    # failures (§3.1 fault tolerance)
    # ------------------------------------------------------------------
    def node_failed(self, node_id: int) -> bool:
        return node_id in self._failed

    def failure_event(self, node_id: int):
        """An event that fires if/when ``node_id`` crashes.

        Origins race their completion waits against this so a crash
        mid-event does not strand the head node.
        """
        ev = self._failure_events.get(node_id)
        if ev is None:
            ev = self.sim.event(f"failure:{node_id}")
            self._failure_events[node_id] = ev
        return ev

    def cancel_execution(self, task_id: int, attempt: int) -> None:
        """Revoke a speculative EXECUTE attempt's side effects.

        The worker still spends the compute time it already committed to
        (the simulation cannot un-run a kernel's occupancy), but the
        task function itself is not applied, so a late-finishing losing
        attempt can never clobber buffers its winner (or the winner's
        successors) produced.
        """
        self._cancelled_execs.add((task_id, attempt))

    def fail_node(self, node_id: int) -> None:
        """Crash a node: kill its event machinery, lose its memory.

        Any node may fail, including the head (node 0): the
        fault-tolerant runtime replicates head state to standbys and
        fails over (see :mod:`repro.core.headlog`); without standbys a
        head crash is unrecoverable and surfaces as ``RecoveryError``.
        """
        if not self._started:
            raise RuntimeError("event system not started")
        if node_id in self._failed:
            return
        self._failed.add(node_id)
        self.memories[node_id].wipe()
        # The wipe zeroes resident_bytes; reset the gauge too, so a
        # co-located job's utilization report never shows ghost bytes
        # from a tenant that was aborted or preempted mid-run.
        self._mem_gauge(node_id, self.memories[node_id])
        gate = self._gates[node_id]
        if gate.is_alive:
            gate.interrupt("node failure")
        for handler in self._handlers[node_id]:
            if handler.is_alive:
                handler.interrupt("node failure")
        self.trace.count("ompc.node_failures")
        ev = self.failure_event(node_id)
        if not ev.triggered:
            ev.succeed(node_id)

    # ------------------------------------------------------------------
    # destination side: gate thread and event handlers
    # ------------------------------------------------------------------
    def _gate(self, node_id: int):
        from repro.sim.errors import Interrupt

        rank = self.control.rank(node_id)
        try:
            while True:
                msg = yield from rank.recv(tag=NOTIFY_TAG)
                note: Notification = msg.payload
                if note.event_type == EventType.EXIT:
                    for _ in range(self.config.event_handlers):
                        yield self._queues[node_id].put(_POISON)
                    return
                self.trace.count("ompc.notifications")
                yield self._queues[node_id].put(note)
                if self.obs.enabled:
                    self.obs.gauge_add(f"node{node_id}.evq", 1, node=node_id)
        except Interrupt:
            return  # node crashed

    def _handler(self, node_id: int, handler_id: int):
        from repro.sim.errors import Interrupt

        queue = self._queues[node_id]
        obs = self.obs
        counts = self.trace.counters
        try:
            while True:
                note = yield queue.get()
                if note is _POISON:
                    return
                enabled = obs.enabled
                if enabled:
                    obs.gauge_add(f"node{node_id}.evq", -1, node=node_id)
                    open_span = obs.begin(
                        "ompc", f"evt:{note.event_type.value}", node_id,
                        tag=note.tag, origin=note.origin,
                    )
                if self.config.event_handler_overhead:
                    yield self.sim.timeout(self.config.event_handler_overhead)
                yield from self._handle(node_id, note)
                if enabled:
                    obs.end(open_span)
                # Interned counter keys: one dict lookup instead of an
                # f-string build per handled event.
                counts[_EVENT_COUNT_KEY[note.event_type]] += 1
        except Interrupt:
            return  # node crashed mid-event; the origin races failure_event

    def _mem_gauge(self, node_id: int, mem: DeviceMemory) -> None:
        """Publish the node's resident-byte footprint after a table change."""
        if self.obs.enabled:
            self.obs.gauge_set(
                f"node{node_id}.mem.resident_bytes",
                mem.resident_bytes,
                node=node_id,
            )

    def _handle(self, node_id: int, note: Notification):
        mem = self.memories[node_id]
        comm = self.pool.select(note.tag)
        rank = comm.rank(node_id)
        cfg = self.config

        if note.event_type == EventType.ALLOC:
            mem.alloc(note.info["buffer_id"], note.info.get("payload"),
                      nbytes=note.info.get("nbytes", 0.0),
                      label=note.info.get("label"),
                      owner=note.info.get("owner"))
            self._mem_gauge(node_id, mem)
            yield from rank.send(note.origin, "done", cfg.completion_bytes, note.tag)

        elif note.event_type == EventType.DELETE:
            mem.delete(note.info["buffer_id"])
            self._mem_gauge(node_id, mem)
            yield from rank.send(note.origin, "done", cfg.completion_bytes, note.tag)

        elif note.event_type == EventType.SUBMIT:
            msg = yield from rank.recv(src=note.origin, tag=note.tag)
            if note.info["buffer_id"] not in mem:
                mem.alloc(note.info["buffer_id"],
                          nbytes=note.info.get("nbytes", 0.0),
                          label=note.info.get("label"))
                self._mem_gauge(node_id, mem)
            mem.write(note.info["buffer_id"], msg.payload)
            yield from rank.send(note.origin, "done", cfg.completion_bytes, note.tag)

        elif note.event_type == EventType.RETRIEVE:
            payload = mem.read(note.info["buffer_id"])
            # The data message itself completes the event at the origin.
            yield from rank.send(
                note.origin, payload, note.info["nbytes"], note.tag
            )

        elif note.event_type == EventType.EXCHANGE_SRC:
            payload = mem.read(note.info["buffer_id"])
            yield from rank.send(
                note.info["dst"], payload, note.info["nbytes"], note.tag
            )

        elif note.event_type == EventType.EXCHANGE_DST:
            msg = yield from rank.recv(src=note.info["src"], tag=note.tag)
            if note.info["buffer_id"] not in mem:
                mem.alloc(note.info["buffer_id"],
                          nbytes=note.info.get("nbytes", 0.0),
                          label=note.info.get("label"))
                self._mem_gauge(node_id, mem)
            mem.write(note.info["buffer_id"], msg.payload)
            yield from rank.send(note.origin, "done", cfg.completion_bytes, note.tag)

        elif note.event_type == EventType.BROADCAST:
            yield from self._handle_broadcast(node_id, note, mem, rank)

        elif note.event_type == EventType.EXECUTE:
            yield from self._handle_execute(node_id, note, mem, rank)

        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled event type {note.event_type}")

    def _handle_broadcast(self, node_id: int, note: Notification, mem, rank):
        """One participant of a binomial-tree broadcast (§7 extension).

        ``info`` carries ``parent`` (None for the data source) and
        ``children``.  Every non-source participant stores the payload
        and acknowledges to the origin.
        """
        cfg = self.config
        parent = note.info["parent"]
        if parent is None:
            payload = mem.read(note.info["buffer_id"])
        else:
            msg = yield from rank.recv(src=parent, tag=note.tag)
            payload = msg.payload
            if note.info["buffer_id"] not in mem:
                mem.alloc(note.info["buffer_id"],
                          nbytes=note.info.get("nbytes", 0.0))
                self._mem_gauge(node_id, mem)
            mem.write(note.info["buffer_id"], payload)
        for child in note.info["children"]:
            yield from rank.send(child, payload, note.info["nbytes"], note.tag)
        if parent is not None:
            yield from rank.send(note.origin, "done", cfg.completion_bytes, note.tag)

    def _stretched(self, node_id: int, duration: float) -> float:
        """Wall time for ``duration`` of compute starting now on the node,
        stretched through any installed stall/hang windows (stragglers)."""
        faults = self.cluster.faults
        if faults is None or duration <= 0:
            return duration
        return faults.stretched(node_id, self.sim.now, duration)

    def _handle_execute(self, node_id: int, note: Notification, mem, rank):
        cfg = self.config
        # 5a in Fig. 3: fetch which function to run and its parameters
        # (a self-dispatching head embeds them in the notification).
        if "params" in note.info:
            task: Task = note.info["params"]
        else:
            params = yield from rank.recv(src=note.origin, tag=note.tag)
            task = params.payload
        tid = task.task_id
        # Head-failover fencing: a dispatch stamped with an older head
        # epoch comes from a deposed (possibly zombie) head whose
        # messages were still in flight — discard it so it can never
        # double-apply work the elected head already re-issued.
        epoch = note.info.get("fo_epoch", 0)
        if epoch < self._node_epoch[node_id]:
            self.trace.count("ompc.exec_fenced")
            yield from rank.send(note.origin, "fenced", cfg.completion_bytes,
                                 note.tag)
            return
        self._node_epoch[node_id] = epoch
        if note.info.get("dedup"):
            # Idempotent re-issue after failover: if the original
            # dispatch is still running here, wait it out, then answer
            # from the dedup table instead of running the task twice.
            prior = self._exec_inflight[node_id].get(tid)
            if prior is not None and not prior.triggered:
                yield prior
            if tid in self._exec_done[node_id]:
                self.trace.count("ompc.exec_dedup_hits")
                yield from rank.send(note.origin, "done",
                                     cfg.completion_bytes, note.tag)
                return
        marker = self.sim.event(f"exec{node_id}:{tid}")
        self._exec_inflight[node_id][tid] = marker
        try:
            yield from self._run_execute(node_id, note, mem, rank, task)
        finally:
            if self._exec_inflight[node_id].get(tid) is marker:
                del self._exec_inflight[node_id][tid]
            if not marker.triggered:
                marker.succeed()

    def _run_execute(self, node_id: int, note: Notification, mem, rank,
                     task: Task):
        cfg = self.config
        node = self.cluster.node(node_id)
        attempt = note.info.get("attempt", 0)
        obs_enabled = self.obs.enabled
        kernel_span = self.obs.begin(
            "task", f"{task.name}:kernel", node_id,
            task_id=task.task_id, attempt=attempt,
        ) if obs_enabled else None

        def revoked() -> bool:
            return (task.task_id, attempt) in self._cancelled_execs

        page_protect = cfg.write_detection == "page_protect"
        if page_protect:
            before = {
                d.buffer.buffer_id: _fingerprint(mem.read(d.buffer.buffer_id))
                for d in task.deps
                if d.buffer.buffer_id in mem
            }

        if task.meta.get("device") == "gpu" and node.gpus is not None:
            # §7 second-level offloading: a nested target region inside
            # the cluster-level target.  The buffers stage over PCIe,
            # the kernel runs at the accelerator's rate, and written
            # buffers stage back.
            spec = node.spec
            in_bytes = sum(b.nbytes for b in task.reads)
            out_bytes = sum(b.nbytes for b in task.writes)
            yield node.gpus.request()
            try:
                if in_bytes or task.reads:
                    yield self.sim.timeout(
                        spec.pcie_latency + in_bytes / spec.pcie_bandwidth
                    )
                duration = self._stretched(
                    node_id, task.cost / (spec.speed * spec.accelerator_speed)
                )
                if duration > 0:
                    yield self.sim.timeout(duration)
                if task.fn is not None and not revoked():
                    args = [mem.read(d.buffer.buffer_id) for d in task.deps]
                    task.fn(*args)
                if out_bytes or task.writes:
                    yield self.sim.timeout(
                        spec.pcie_latency + out_bytes / spec.pcie_bandwidth
                    )
            finally:
                node.gpus.release()
            self.trace.count("ompc.gpu_executions")
        else:
            # Second-level parallelism: a task may use several cores
            # inside the node (parallel-for inside the target region,
            # §3.1).  The model charges cost / (threads × speed) while
            # occupying one hardware context, which is exact when a node
            # runs one task at a time (our workloads) and conservative
            # otherwise.
            threads = min(int(task.meta.get("omp_threads", 1)), node.spec.cores)
            duration = node.compute_time(task.cost) / max(threads, 1)
            yield node.cpu.request()
            if obs_enabled:
                self.obs.gauge_add(
                    f"node{node_id}.cpu_busy", threads, node=node_id
                )
            try:
                duration = self._stretched(node_id, duration)
                if duration > 0:
                    yield self.sim.timeout(duration)
                if task.fn is not None and not revoked():
                    args = [mem.read(d.buffer.buffer_id) for d in task.deps]
                    task.fn(*args)
            finally:
                if obs_enabled:
                    self.obs.gauge_add(
                        f"node{node_id}.cpu_busy", -threads, node=node_id
                    )
                node.cpu.release()

        completion: Any = "done"
        if page_protect:
            # §7's alternative write detection: allocations are write-
            # protected; the first store to each page faults into the
            # runtime, which marks the region dirty.  We observe which
            # payloads actually changed and charge one fault per page.
            written: list[int] = []
            fault_pages = 0
            for dep in task.deps:
                bid = dep.buffer.buffer_id
                if bid not in before:
                    continue
                after = _fingerprint(mem.read(bid))
                if after != before[bid]:
                    written.append(bid)
                    fault_pages += max(
                        1, int(dep.buffer.nbytes // cfg.page_size)
                    )
                elif after is None and dep.type.writes:
                    # Timing-only payloads can't be fingerprinted; fall
                    # back to the declared intent for them.
                    written.append(bid)
                    fault_pages += max(
                        1, int(dep.buffer.nbytes // cfg.page_size)
                    )
            if fault_pages and cfg.page_fault_overhead:
                yield self.sim.timeout(fault_pages * cfg.page_fault_overhead)
            self.trace.count("ompc.page_faults", fault_pages)
            completion = ("done", tuple(written))
        if obs_enabled:
            self.obs.end(kernel_span)
        if self.analysis.enabled and not revoked():
            self.analysis.on_kernel(task, node_id, note.info.get("actx"))
        if not revoked():
            self._exec_done[node_id].add(task.task_id)
        yield from rank.send(note.origin, completion, cfg.completion_bytes,
                             note.tag)

    # ------------------------------------------------------------------
    # origin side (generator API, normally driven from the head node)
    # ------------------------------------------------------------------
    def _begin(
        self, origin: int, dst: int, event_type: EventType, info: dict
    ):
        """Create the origin half: charge overhead, allocate tag, notify."""
        if not self._started:
            raise RuntimeError("event system not started")
        if self.config.event_origin_overhead:
            yield self.sim.timeout(self.config.event_origin_overhead)
        if not self._first_event_done:
            # One-time lazy initialization right after the first event
            # (the ~4.7 ms interval of Fig. 7a).
            self._first_event_done = True
            if self.config.first_event_interval:
                span = self.trace.begin("ompc", "first_event_interval")
                obs_span = self.obs.begin(
                    "ompc", "first_event_interval", origin
                )
                yield self.sim.timeout(self.config.first_event_interval)
                self.trace.end(span)
                self.obs.end(obs_span)
        tag = self.tags.allocate()
        note = Notification(event_type, tag, origin, info)
        yield from self.control.rank(origin).send(
            dst, note, self.config.notification_bytes, NOTIFY_TAG
        )
        return tag

    def _await_completion(self, origin: int, src: int, tag: int):
        """Generator: wait for the (tag-isolated) completion message.

        ``src`` may be :data:`~repro.mpi.comm.ANY_SOURCE` for events
        acknowledged by several nodes (broadcast).
        """
        comm = self.pool.select(tag)
        msg = yield from comm.rank(origin).recv(src=src, tag=tag)
        return msg

    # -- the plugin-visible operations ------------------------------------
    def alloc(self, dst: int, buffer_id: int, payload: Any = None,
              origin: int = 0, nbytes: float = 0.0,
              label: str | None = None, owner: str | None = None):
        """Generator: allocate a device entry for ``buffer_id`` on ``dst``.

        ``payload`` optionally seeds the entry with the host-side object
        reference *without charging any transfer time* — this stands in
        for "device memory the task is about to fill" when buffers carry
        real NumPy arrays (payloads travel by reference; only explicit
        submit/exchange/retrieve operations charge bytes).  ``nbytes``
        is the logical size billed against the node's device-memory
        capacity; an overflow surfaces as ``DeviceMemoryError`` on the
        worker.
        """
        tag = yield from self._begin(origin, dst, EventType.ALLOC,
                                     {"buffer_id": buffer_id,
                                      "payload": payload,
                                      "nbytes": nbytes,
                                      "label": label,
                                      "owner": owner})
        yield from self._await_completion(origin, dst, tag)

    def delete(self, dst: int, buffer_id: int, origin: int = 0):
        """Generator: remove ``buffer_id`` from ``dst``."""
        tag = yield from self._begin(origin, dst, EventType.DELETE,
                                     {"buffer_id": buffer_id})
        yield from self._await_completion(origin, dst, tag)

    def submit(self, dst: int, buffer_id: int, payload: Any, nbytes: float,
               origin: int = 0, label: str | None = None):
        """Generator: push data origin → ``dst`` (host-to-device copy)."""
        tag = yield from self._begin(origin, dst, EventType.SUBMIT,
                                     {"buffer_id": buffer_id,
                                      "nbytes": nbytes,
                                      "label": label})
        comm = self.pool.select(tag)
        req = comm.rank(origin).isend(dst, payload, nbytes, tag)
        yield from self._await_completion(origin, dst, tag)
        yield from req.wait()
        self.trace.count("ompc.bytes_submitted", nbytes)

    def retrieve(self, dst: int, buffer_id: int, nbytes: float, origin: int = 0):
        """Generator: pull data ``dst`` → origin; returns the payload."""
        tag = yield from self._begin(origin, dst, EventType.RETRIEVE,
                                     {"buffer_id": buffer_id, "nbytes": nbytes})
        msg = yield from self._await_completion(origin, dst, tag)
        self.trace.count("ompc.bytes_retrieved", nbytes)
        return msg.payload

    def exchange(self, src: int, dst: int, buffer_id: int, nbytes: float,
                 origin: int = 0, label: str | None = None):
        """Generator: forward data worker → worker without passing
        through the origin (§4.3's head-bypassing copy).

        The origin orchestrates: both endpoints get notifications
        sharing one tag; the payload flows ``src → dst`` directly.
        """
        if self.config.event_origin_overhead:
            yield self.sim.timeout(self.config.event_origin_overhead)
        tag = self.tags.allocate()
        ctrl = self.control.rank(origin)
        note_src = Notification(
            EventType.EXCHANGE_SRC, tag, origin,
            {"buffer_id": buffer_id, "dst": dst, "nbytes": nbytes},
        )
        note_dst = Notification(
            EventType.EXCHANGE_DST, tag, origin,
            {"buffer_id": buffer_id, "src": src, "nbytes": nbytes,
             "label": label},
        )
        req_a = ctrl.isend(src, note_src, self.config.notification_bytes, NOTIFY_TAG)
        req_b = ctrl.isend(dst, note_dst, self.config.notification_bytes, NOTIFY_TAG)
        yield from req_a.wait()
        yield from req_b.wait()
        yield from self._await_completion(origin, dst, tag)
        self.trace.count("ompc.bytes_exchanged", nbytes)

    def broadcast(self, src: int, dsts: list[int], buffer_id: int, nbytes: float,
                  origin: int = 0):
        """Generator: one-to-many forward along a binomial tree (§7).

        ``src`` holds the data; every node in ``dsts`` receives a copy.
        A single event (one tag) covers the whole tree; the origin waits
        for one completion per destination.
        """
        if not dsts:
            return
        if self.config.event_origin_overhead:
            yield self.sim.timeout(self.config.event_origin_overhead)
        tag = self.tags.allocate()
        participants = [src] + list(dsts)
        tree = _binomial_tree(participants)
        ctrl = self.control.rank(origin)
        reqs = []
        for node_id in participants:
            parent, children = tree[node_id]
            note = Notification(
                EventType.BROADCAST, tag, origin,
                {
                    "buffer_id": buffer_id,
                    "nbytes": nbytes,
                    "parent": parent,
                    "children": children,
                },
            )
            reqs.append(
                ctrl.isend(node_id, note, self.config.notification_bytes, NOTIFY_TAG)
            )
        for req in reqs:
            yield from req.wait()
        from repro.mpi.comm import ANY_SOURCE

        for _ in dsts:
            yield from self._await_completion(origin, ANY_SOURCE, tag)
        self.trace.count("ompc.bytes_broadcast", nbytes * len(dsts))

    def execute(self, dst: int, task: Task, origin: int = 0, attempt: int = 0,
                dedup: bool = False, fo_epoch: int = 0):
        """Generator: run a target region on ``dst`` (the EXECUTE event).

        Returns the tuple of buffer ids the device *detected* as written
        when page-protection write detection is enabled (§7), else
        ``None`` (the caller trusts the depend clauses).  ``attempt``
        identifies this dispatch for :meth:`cancel_execution` (straggler
        speculation re-dispatches the same task under a new attempt id).
        ``dedup`` marks a post-failover re-issue the worker may answer
        from its completion table; ``fo_epoch`` stamps the dispatch with
        the issuing head's epoch so workers can fence zombie dispatches
        from a deposed head.
        """
        info: dict[str, Any] = {"task_id": task.task_id, "attempt": attempt}
        if self.analysis.enabled:
            # The happens-before context token rides the notification:
            # the worker-side kernel recording joins the declared task
            # edge to the physical dispatch that realized it.  Recovery
            # re-executions of finished tasks carry None (system work).
            info["actx"] = self.analysis.ctx_token(task)
        if dedup:
            info["dedup"] = True
        if fo_epoch:
            info["fo_epoch"] = fo_epoch
        if dst == origin:
            # Self-dispatch: after a head failover the elected head is
            # both dispatcher and worker.  A separate params message
            # and the completion would both match ``(src, tag) ==
            # (origin, tag)`` on this node — the origin's completion
            # wait would swallow the params — so the params ride inside
            # the notification instead.
            info["params"] = task
            tag = yield from self._begin(origin, dst, EventType.EXECUTE,
                                         info)
            msg = yield from self._await_completion(origin, dst, tag)
        else:
            tag = yield from self._begin(origin, dst, EventType.EXECUTE,
                                         info)
            comm = self.pool.select(tag)
            req = comm.rank(origin).isend(dst, task,
                                          self.config.params_bytes, tag)
            msg = yield from self._await_completion(origin, dst, tag)
            yield from req.wait()
        if isinstance(msg.payload, tuple) and msg.payload[0] == "done":
            return msg.payload[1]
        return None


def _fingerprint(payload: Any):
    """A change-detecting digest of a device payload.

    NumPy arrays hash their bytes; hashable (hence immutable) objects
    hash directly (they cannot change); unhashable mutable objects
    return ``None``, signalling "undetectable — fall back to the
    declared dependence type".
    """
    if payload is None:
        return None
    import numpy as np

    if isinstance(payload, np.ndarray):
        return hash(payload.tobytes())
    try:
        return hash(payload)
    except TypeError:
        return None


def _binomial_tree(participants: list[int]) -> dict[int, tuple[int | None, list[int]]]:
    """Binomial spanning tree over ``participants`` (first is the root).

    Returns ``{node: (parent_or_None, [children])}`` using actual node
    ids, with tree positions taken in list order.  A position's parent
    clears its lowest set bit; its children add each power of two below
    that bit (below ``2^ceil(log2 n)`` for the root).
    """
    n = len(participants)
    tree: dict[int, tuple[int | None, list[int]]] = {}
    for pos, node in enumerate(participants):
        if pos == 0:
            parent = None
            receive_bit = 1
            while receive_bit < n:
                receive_bit <<= 1
        else:
            parent = participants[pos & (pos - 1)]
            receive_bit = pos & -pos
        children = []
        child_bit = receive_bit >> 1
        while child_bit > 0:
            if pos + child_bit < n:
                children.append(participants[pos + child_bit])
            child_bit >>= 1
        tree[node] = (parent, children)
    return tree
