"""MatchStore: slotted MPI matching equivalent to the linear-scan Store."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import count

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld
from repro.mpi.matchtable import MatchStore
from repro.sim.core import Simulator
from repro.sim.resources import Store

_ids = count()


@dataclass
class Msg:
    src: int
    tag: int
    uid: int = field(default_factory=lambda: next(_ids))


def _pred(src: int, tag: int):
    return lambda m: ((src == ANY_SOURCE or m.src == src)
                      and (tag == ANY_TAG or m.tag == tag))


class TestMatching:
    def test_exact_match_is_fifo_per_src_tag(self):
        store = MatchStore(Simulator())
        m1, m2 = Msg(0, 1), Msg(0, 1)
        store.put(m1)
        store.put(m2)
        assert store.get_match(0, 1).value is m1
        assert store.get_match(0, 1).value is m2
        assert len(store) == 0

    def test_any_source_picks_earliest_arrival_across_slots(self):
        store = MatchStore(Simulator())
        first, second = Msg(3, 7), Msg(1, 7)
        store.put(first)
        store.put(second)
        store.put(Msg(2, 8))  # different tag; must not match
        assert store.get_match(ANY_SOURCE, 7).value is first
        assert store.get_match(ANY_SOURCE, 7).value is second

    def test_any_tag_picks_earliest_arrival_for_source(self):
        store = MatchStore(Simulator())
        first, second = Msg(2, 9), Msg(2, 4)
        store.put(Msg(0, 9))  # different src; must not match
        store.put(first)
        store.put(second)
        assert store.get_match(2, ANY_TAG).value is first
        assert store.get_match(2, ANY_TAG).value is second

    def test_fully_wild_receive_sees_global_arrival_order(self):
        store = MatchStore(Simulator())
        msgs = [Msg(2, 9), Msg(0, 1), Msg(5, 5)]
        for m in msgs:
            store.put(m)
        got = [store.get_match(ANY_SOURCE, ANY_TAG).value for _ in msgs]
        assert got == msgs

    def test_put_prefers_earliest_posted_receive(self):
        # A wildcard posted before an exact receive must win the message
        # (the reference dispatch scans getters in FIFO order).
        store = MatchStore(Simulator())
        wild = store.get_match(ANY_SOURCE, ANY_TAG)
        exact = store.get_match(0, 5)
        msg = Msg(0, 5)
        store.put(msg)
        assert wild.value is msg
        assert not exact.triggered
        late = Msg(0, 5)
        store.put(late)
        assert exact.value is late

    def test_unmatched_receive_waits_for_put(self):
        store = MatchStore(Simulator())
        recv = store.get_match(1, 2)
        assert not recv.triggered
        msg = Msg(1, 2)
        store.put(msg)
        assert recv.value is msg

    def test_predicate_get_is_disabled(self):
        store = MatchStore(Simulator())
        with pytest.raises(TypeError):
            store.get(lambda m: True)

    def test_items_and_peek_in_arrival_order(self):
        store = MatchStore(Simulator())
        msgs = [Msg(1, 1), Msg(0, 0), Msg(1, 1)]
        for m in msgs:
            store.put(m)
        assert list(store.items) == msgs
        assert len(store) == 3
        assert store.peek() is msgs[0]
        assert store.peek(lambda m: m.src == 0) is msgs[1]
        assert store.peek(lambda m: m.src == 9) is None


class TestTagFifo:
    """The ANY_SOURCE-by-tag per-tag arrival FIFO (the mass fan-in
    fast path) must survive other patterns consuming its entries."""

    def test_stale_head_discarded_after_exact_receive(self):
        store = MatchStore(Simulator())
        first, second = Msg(1, 7), Msg(2, 7)
        store.put(first)
        store.put(second)
        # An exact receive consumes the FIFO's head out from under it.
        assert store.get_match(1, 7).value is first
        assert store.get_match(ANY_SOURCE, 7).value is second

    def test_stale_entries_from_fully_wild_receive(self):
        store = MatchStore(Simulator())
        msgs = [Msg(0, 5), Msg(1, 5), Msg(2, 5)]
        for m in msgs:
            store.put(m)
        assert store.get_match(ANY_SOURCE, ANY_TAG).value is msgs[0]
        assert store.get_match(ANY_SOURCE, 5).value is msgs[1]
        assert store.get_match(ANY_SOURCE, 5).value is msgs[2]

    def test_fifo_drained_and_rebuilt(self):
        store = MatchStore(Simulator())
        store.put(Msg(4, 9))
        assert store.get_match(ANY_SOURCE, 9).value.src == 4
        assert 9 not in store._tag_fifo  # drained FIFOs are deleted
        late = Msg(5, 9)
        store.put(late)
        assert store.get_match(ANY_SOURCE, 9).value is late

    def test_mass_fan_in_drains_in_arrival_order(self):
        store = MatchStore(Simulator())
        msgs = [Msg(src, 2) for src in range(64)]
        for m in msgs:
            store.put(m)
        got = [store.get_match(ANY_SOURCE, 2).value for _ in msgs]
        assert got == msgs
        assert len(store) == 0


class TestCancel:
    def test_cancel_withdraws_pending_receive(self):
        store = MatchStore(Simulator())
        recv = store.get_match(0, 0)
        assert store.cancel(recv) is True
        assert store.cancel(recv) is False  # already withdrawn
        msg = Msg(0, 0)
        store.put(msg)
        assert not recv.triggered  # cancelled: the message buffers
        assert store.get_match(0, 0).value is msg

    def test_cancelled_head_does_not_block_later_receives(self):
        store = MatchStore(Simulator())
        dead = store.get_match(ANY_SOURCE, 3)
        live = store.get_match(ANY_SOURCE, 3)
        store.cancel(dead)
        msg = Msg(7, 3)
        store.put(msg)
        assert live.value is msg

    def test_cancel_matched_receive_is_a_noop(self):
        store = MatchStore(Simulator())
        store.put(Msg(0, 0))
        recv = store.get_match(0, 0)
        assert recv.triggered
        assert store.cancel(recv) is False


class TestReferenceEquivalence:
    """Randomized puts/receives/cancels replayed against the reference
    Store with predicate getters: same deliveries in the same order."""

    def _run(self, seed: int):
        rng = random.Random(seed)
        ops = []
        for _ in range(300):
            roll = rng.random()
            if roll < 0.45:
                ops.append(("put", rng.randrange(3), rng.randrange(3)))
            elif roll < 0.9:
                ops.append((
                    "get",
                    rng.choice([ANY_SOURCE, 0, 1, 2]),
                    rng.choice([ANY_TAG, 0, 1, 2]),
                ))
            else:
                ops.append(("cancel", rng.randrange(8), 0))

        def replay(store, post_get):
            gets, cancels = [], []
            for op, a, b in ops:
                if op == "put":
                    store.put(Msg(a, b))
                elif op == "get":
                    gets.append(post_get(store, a, b))
                elif gets:
                    ev = gets[a % len(gets)]
                    cancels.append(store.cancel(ev))
            outcome = [
                (ev.value.src, ev.value.tag) if ev.triggered else None
                for ev in gets
            ]
            return outcome, cancels, [(m.src, m.tag) for m in store.items]

        fast = replay(
            MatchStore(Simulator()),
            lambda s, src, tag: s.get_match(src, tag),
        )
        ref = replay(
            Store(Simulator()),
            lambda s, src, tag: s.get(_pred(src, tag)),
        )
        assert fast == ref

    @pytest.mark.parametrize("seed", range(10))
    def test_random_op_sequences(self, seed):
        self._run(seed)


class TestIsendGuards:
    def _world(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        return cluster, MpiWorld(cluster, overhead=0.0)

    @pytest.mark.parametrize(
        "nbytes", [float("nan"), float("inf"), -float("inf"), -1.0]
    )
    def test_isend_rejects_non_finite_nbytes(self, nbytes):
        _cluster, mpi = self._world()
        with pytest.raises(ValueError):
            mpi.world.rank(0).isend(1, None, nbytes=nbytes)

    def test_isend_world_uses_match_store(self):
        # The fast kernel's wiring: world queues are MatchStores, so
        # receives go through the slotted path, not predicate scans.
        cluster, mpi = self._world()
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(0).send(1, "payload", nbytes=10, tag=3)

        def receiver():
            msg = yield from mpi.world.rank(1).recv(src=0, tag=3)
            return msg.payload

        sim.process(sender())
        recv = sim.process(receiver())
        assert sim.run(until=recv) == "payload"
        assert type(mpi._queue(1, mpi.world.comm_id)) is MatchStore
