"""Tests for shared utilities: units, RNG derivation, sim logging."""

import io

import numpy as np
import pytest

from repro.sim import Simulator
from repro.util import (
    GB,
    GIB,
    Gbps,
    KB,
    MB,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    derive_rng,
    fmt_bytes,
    fmt_time,
)
from repro.util.logging import SimLogger


class TestUnits:
    def test_size_constants(self):
        assert KB == 1_000 and MB == 1_000_000 and GB == 1_000_000_000
        assert GIB == 2**30

    def test_gbps(self):
        assert Gbps(100.0) == pytest.approx(12.5e9)
        assert Gbps(8.0) == pytest.approx(1e9)

    def test_time_constants(self):
        assert NANOSECOND == 1e-9
        assert MICROSECOND == 1e-6
        assert MILLISECOND == 1e-3

    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (2048, "2.0KiB"),
            (5 * 2**20, "5.0MiB"),
            (3 * 2**30, "3.0GiB"),
        ],
    )
    def test_fmt_bytes(self, value, expected):
        assert fmt_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0s"),
            (5e-9, "5.0ns"),
            (2.5e-6, "2.5us"),
            (0.0047, "4.70ms"),
            (1.5, "1.500s"),
            (180.0, "3.00min"),
        ],
    )
    def test_fmt_time(self, value, expected):
        assert fmt_time(value) == expected


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        a = derive_rng(7, "component").random(5)
        b = derive_rng(7, "component").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = derive_rng(7, "a").random(5)
        b = derive_rng(7, "b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_multi_key_derivation(self):
        a = derive_rng(1, "x", "y").random(3)
        b = derive_rng(1, "xy").random(3)
        assert not np.array_equal(a, b)  # key boundaries matter


class TestSimLogger:
    def test_disabled_by_default(self):
        sim = Simulator()
        stream = io.StringIO()
        log = SimLogger(sim, "test", stream=stream)
        log.log("hidden")
        assert stream.getvalue() == ""

    def test_enabled_prefixes_time_and_component(self):
        sim = Simulator()
        stream = io.StringIO()
        log = SimLogger(sim, "dm", enabled=True, stream=stream)
        sim.timeout(0.5)
        sim.run()
        log.log("moved buffer")
        out = stream.getvalue()
        assert "dm: moved buffer" in out
        assert "500.0000ms" in out

    def test_child_inherits_settings(self):
        sim = Simulator()
        stream = io.StringIO()
        log = SimLogger(sim, "events", enabled=True, stream=stream)
        child = log.child("gate0")
        child.log("up")
        assert "events.gate0: up" in stream.getvalue()
