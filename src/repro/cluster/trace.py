"""Execution tracing: timed spans and counters for overhead analysis.

The overhead experiment (Fig. 7a) breaks wall time into startup,
shutdown, and scheduling components.  Runtimes record those phases as
:class:`Span` records on a shared :class:`TraceRecorder`; benches then
aggregate fractions of total wall time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterator

from repro.sim.core import Simulator


@dataclass(frozen=True)
class Span:
    """A closed time interval attributed to a component/phase."""

    component: str
    name: str
    start: float
    end: float
    meta: tuple = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _OpenSpan:
    component: str
    name: str
    start: float
    meta: tuple = ()


class TraceRecorder:
    """Collects spans and counters from a simulation run."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spans: list[Span] = []
        self.counters: dict[str, float] = defaultdict(float)

    # -- spans ----------------------------------------------------------
    def begin(self, component: str, name: str, **meta: Any) -> _OpenSpan:
        return _OpenSpan(component, name, self.sim.now, tuple(sorted(meta.items())))

    def end(self, open_span: _OpenSpan) -> Span:
        span = Span(
            open_span.component,
            open_span.name,
            open_span.start,
            self.sim.now,
            open_span.meta,
        )
        self.spans.append(span)
        return span

    def record(self, component: str, name: str, start: float, end: float) -> Span:
        span = Span(component, name, start, end)
        self.spans.append(span)
        return span

    # -- counters ----------------------------------------------------------
    def count(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] += amount

    # -- queries ----------------------------------------------------------
    def find(self, component: str | None = None, name: str | None = None) -> Iterator[Span]:
        for span in self.spans:
            if component is not None and span.component != component:
                continue
            if name is not None and span.name != name:
                continue
            yield span

    def total_duration(self, component: str | None = None, name: str | None = None) -> float:
        return sum(s.duration for s in self.find(component, name))

    # -- export ----------------------------------------------------------
    def to_chrome_trace(self) -> list[dict]:
        """Spans as Chrome ``chrome://tracing`` / Perfetto events.

        Complete events (``ph: "X"``) with microsecond timestamps; the
        component becomes the process name, the span name the event
        name.  Serialize with ``json.dumps`` and load in any trace
        viewer.
        """
        from repro.obs.exporter import pack_lanes

        events = []
        pids = {}
        by_component: dict[str, list[Span]] = {}
        for span in self.spans:
            pids.setdefault(span.component, len(pids))
            by_component.setdefault(span.component, []).append(span)
        for component, spans in by_component.items():
            pid = pids[component]
            # Overlapping spans must land on distinct lanes or the
            # viewer silently stacks them; greedy interval packing
            # keeps the lane count minimal.
            lanes = pack_lanes([(s.start, s.end) for s in spans])
            for span, tid in zip(spans, lanes):
                events.append(
                    {
                        "name": span.name,
                        "cat": span.component,
                        "ph": "X",
                        "ts": span.start * 1e6,
                        "dur": span.duration * 1e6,
                        "pid": pid,
                        "tid": tid,
                        "args": dict(span.meta),
                    }
                )
        for component, pid in pids.items():
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": component},
                }
            )
        return events
