"""Tests for the elastic overload-protection layer."""

import math

import pytest

from repro.cluster.machine import Cluster, ClusterSpec
from repro.cluster.partition import ElasticNodePool
from repro.core import NodeFailure
from repro.jobs import (
    ElasticConfig,
    ElasticJobManager,
    JobManager,
    JobState,
    TokenBucket,
    select_victims,
)
from repro.jobs.workload import _taskbench_job


def tb_job(name, nodes, tenant="t", task_seconds=0.01, steps=2, **kw):
    return _taskbench_job(name, tenant, nodes, width=nodes - 1,
                          steps=steps, task_seconds=task_seconds, **kw)


def elastic_manager(nodes=10, policy="fifo", **cfg):
    cfg.setdefault("rate", math.inf)
    cfg.setdefault("queue_limit", None)
    return ElasticJobManager(
        Cluster(ClusterSpec(num_nodes=nodes)),
        policy=policy,
        elastic=ElasticConfig(**cfg),
    )


class TestTokenBucket:
    def test_burst_then_starve(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_with_time(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.05)  # only 0.5 tokens back
        assert bucket.try_take(0.1)       # 1.0 tokens at t=0.1

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.try_take(10.0)  # long idle: still only 2 tokens
        assert bucket.try_take(10.0)
        assert not bucket.try_take(10.0)

    def test_infinite_rate_never_blocks(self):
        bucket = TokenBucket(rate=math.inf, burst=1.0)
        assert all(bucket.try_take(0.0) for _ in range(100))


class TestAdmission:
    def test_rate_limit_sheds_burst(self):
        mgr = elastic_manager(rate=5.0, burst=2.0, autoscale=False)
        specs = [(0.0, tb_job(f"j{i}", 3, tenant="spammer"))
                 for i in range(4)]
        report = mgr.run(specs)
        shed = [j for j in mgr.jobs if j.state is JobState.SHED]
        assert len(shed) == 2
        assert all("rate limit" in j.error for j in shed)
        assert report.shed == 2 and report.completed == 2
        assert report.accounted == report.total_jobs

    def test_rate_limit_is_per_tenant(self):
        mgr = elastic_manager(nodes=12, rate=5.0, burst=1.0, autoscale=False)
        report = mgr.run([
            (0.0, tb_job("a1", 3, tenant="alice")),
            (0.0, tb_job("a2", 3, tenant="alice")),
            (0.0, tb_job("b1", 3, tenant="bob")),
        ])
        assert report.shed == 1
        assert mgr.jobs[1].state is JobState.SHED  # alice's second
        assert mgr.jobs[2].state is JobState.COMPLETED  # bob unaffected

    def test_bounded_queue_sheds_overflow(self):
        mgr = elastic_manager(queue_limit=2, autoscale=False)
        # One job holds the whole pool; the next two queue; the rest shed.
        report = mgr.run(
            [(0.0, tb_job("wide", 9, task_seconds=0.05))]
            + [(0.001, tb_job(f"q{i}", 3)) for i in range(4)]
        )
        assert report.shed == 2
        assert report.completed == 3
        shed = [j for j in mgr.jobs if j.state is JobState.SHED]
        assert all("queue full" in j.error for j in shed)

    def test_no_limits_schedules_like_base_manager(self):
        jobs = [(0.0, tb_job("a", 4)), (0.0, tb_job("b", 4)),
                (0.01, tb_job("c", 6))]
        base = JobManager(Cluster(ClusterSpec(num_nodes=10)))
        base_report = base.run(jobs)
        ela = elastic_manager(nodes=10, autoscale=False, preemption=False)
        ela_report = ela.run(jobs)
        base_sched = [(r.name, r.start_time, r.finish_time)
                      for r in base_report.records]
        ela_sched = [(r.name, r.start_time, r.finish_time)
                     for r in ela_report.records]
        assert base_sched == ela_sched


class TestAutoscaler:
    def test_scales_up_under_pressure(self):
        mgr = elastic_manager(
            nodes=10, initial_online=3, warmup_time=0.01,
            check_interval=0.002, cooldown=0.004, scale_step=4,
        )
        assert mgr.pool.capacity == 3
        report = mgr.run([
            (0.0, tb_job("a", 3)),
            (0.0, tb_job("b", 5)),  # does not fit until a scale-up
        ])
        assert report.completed == 2
        assert mgr.autoscaler.scale_ups >= 1
        assert mgr.jobs[1].state is JobState.COMPLETED

    def test_warmup_delays_capacity(self):
        mgr = elastic_manager(
            nodes=10, initial_online=3, warmup_time=0.05,
            check_interval=0.002, cooldown=0.004,
        )
        mgr.run([(0.0, tb_job("big", 5, task_seconds=0.005))])
        big = mgr.jobs[0]
        # The job could not start before one warm-up completed.
        assert big.start_time >= 0.05

    def test_scales_down_when_idle(self):
        mgr = elastic_manager(
            nodes=10, initial_online=9, warmup_time=0.01,
            check_interval=0.002, cooldown=0.004, min_online=4,
        )
        mgr.run([(0.0, tb_job("solo", 3, task_seconds=0.005))])
        # Idle ticks after the job parked spare capacity (never < min).
        assert mgr.autoscaler.scale_downs >= 1
        assert mgr.pool.capacity >= 4
        assert mgr.pool.offline_count >= 1

    def test_queued_job_awaiting_scaleup_not_failed(self):
        # Static manager would fail a job wider than current capacity;
        # the elastic pool's potential capacity keeps it queued.
        mgr = elastic_manager(
            nodes=10, initial_online=3, warmup_time=0.01,
            check_interval=0.002, cooldown=0.004, scale_step=6,
        )
        report = mgr.run([(0.0, tb_job("wide", 8))])
        assert report.failed == 0
        assert mgr.jobs[0].state is JobState.COMPLETED


class TestPreemption:
    def two_tier(self, **cfg):
        cfg.setdefault("autoscale", False)
        cfg.setdefault("max_preemptions", 5)
        return elastic_manager(nodes=8, **cfg)

    def test_high_priority_evicts_batch(self):
        mgr = self.two_tier()
        report = mgr.run([
            (0.0, tb_job("batch", 7, task_seconds=0.05, steps=4,
                         preemptible=True)),
            (0.01, tb_job("urgent", 7, priority=10)),
        ])
        assert report.completed == 2
        batch, urgent = mgr.jobs
        assert batch.preemptions == 1
        assert batch.requeues == 1
        assert batch.attempts == 1  # eviction does not charge an attempt
        assert report.preempted == 1
        # The urgent job ran before the batch job's re-run finished.
        assert urgent.finish_time < batch.finish_time

    def test_non_preemptible_is_safe(self):
        mgr = self.two_tier()
        report = mgr.run([
            (0.0, tb_job("stubborn", 7, task_seconds=0.05, steps=4)),
            (0.01, tb_job("urgent", 7, priority=10)),
        ])
        assert report.completed == 2
        stubborn = mgr.jobs[0]
        assert stubborn.preemptions == 0
        # The urgent job simply waited.
        assert mgr.jobs[1].start_time >= stubborn.finish_time

    def test_equal_priority_never_preempts(self):
        mgr = self.two_tier()
        report = mgr.run([
            (0.0, tb_job("first", 7, task_seconds=0.05, preemptible=True)),
            (0.01, tb_job("second", 7)),
        ])
        assert report.preempted == 0
        assert report.completed == 2

    def test_select_victims_prefers_low_priority_least_work(self):
        mgr = self.two_tier()

        class FakeJob:
            def __init__(self, jid, prio, start, nodes):
                self.job_id = jid
                self.start_time = start
                self.partition = tuple(range(nodes))
                self.spec = type("S", (), {
                    "preemptible": True, "priority": prio, "nodes": nodes,
                })()

        old = FakeJob(1, 0, 0.0, 3)
        young = FakeJob(2, 0, 0.5, 3)
        high = FakeJob(3, 5, 0.1, 3)
        mgr.running = {1: old, 2: young, 3: high}
        blocked = FakeJob(9, 10, 0.9, 3)
        victims = select_victims(blocked, mgr, free=0)
        # Youngest same-priority candidate goes first; 3 nodes suffice.
        assert [v.job_id for v in victims] == [2]
        # Demanding more takes the older one too, never the high-prio.
        blocked6 = FakeJob(9, 10, 0.9, 6)
        victims = select_victims(blocked6, mgr, free=0)
        assert [v.job_id for v in victims] == [2, 1]
        blocked99 = FakeJob(9, 3, 0.9, 99)
        assert select_victims(blocked99, mgr, free=0) == []

    def test_preemption_thrash_dead_letters(self):
        mgr = self.two_tier(max_preemptions=0)
        report = mgr.run([
            (0.0, tb_job("victim", 7, task_seconds=0.05, steps=4,
                         preemptible=True)),
            (0.01, tb_job("urgent", 7, priority=10)),
        ])
        victim = mgr.jobs[0]
        assert victim.state is JobState.DEAD_LETTERED
        assert "thrash" in victim.error
        assert report.dead_lettered == 1
        assert len(mgr.dead_letters) == 1
        rec = mgr.dead_letters.records[0]
        assert rec.kind == "preemption"
        assert rec.name == "victim"


class TestDeadLetterQueue:
    def test_poison_job_quarantined(self):
        # Head dies on attempt 1; attempt 2 still carries the worker
        # failures (their offsets had not elapsed), loses all workers,
        # and runs out of attempts -> dead-lettered, bystander fine.
        mgr = elastic_manager(nodes=12, autoscale=False)
        poison = tb_job(
            "poison", 3, steps=9, task_seconds=0.05,
            fault_tolerant=True, max_attempts=2,
            failures=(NodeFailure(time=0.005, node=0),
                      NodeFailure(time=0.08, node=1),
                      NodeFailure(time=0.09, node=2)),
        )
        report = mgr.run([
            (0.0, poison),
            (0.0, tb_job("bystander", 3)),
        ])
        assert report.dead_lettered == 1
        assert report.completed == 1
        job = mgr.jobs[0]
        assert job.state is JobState.DEAD_LETTERED
        assert job.attempts == 2
        rec = mgr.dead_letters.records[0]
        assert rec.kind == "failures"
        assert "cluster exhausted" in rec.reason
        assert report.accounted == report.total_jobs

    def test_base_manager_fails_instead_of_quarantining(self):
        mgr = JobManager(Cluster(ClusterSpec(num_nodes=12)))
        report = mgr.run([(0.0, tb_job(
            "hopeless", 3, steps=9, task_seconds=0.05,
            fault_tolerant=True, max_attempts=1,
            failures=(NodeFailure(time=0.005, node=0),),
        ))])
        assert report.failed == 1
        assert report.dead_lettered == 0
        assert mgr.jobs[0].state is JobState.FAILED


class TestClusterExhausted:
    def test_all_workers_dead_does_not_crash_manager(self):
        # Regression: both workers of an FT job die permanently.  The
        # RecoveryError used to escape the simulation loop and kill
        # every tenant; now it is a clean ClusterExhausted that only
        # fails (or retries) the one job.
        mgr = JobManager(Cluster(ClusterSpec(num_nodes=8)))
        report = mgr.run([
            (0.0, tb_job("victim", 3, steps=9, task_seconds=0.05,
                         fault_tolerant=True, max_attempts=2,
                         failures=(NodeFailure(time=0.02, node=1),
                                   NodeFailure(time=0.02, node=2)))),
            (0.0, tb_job("bystander", 3, tenant="t2")),
        ])
        assert report.completed == 2  # retry on fresh nodes succeeded
        assert mgr.jobs[1].state is JobState.COMPLETED
        assert report.counters.get("jobs.cluster_exhausted", 0) == 1

    def test_exhaustion_with_tiny_pool_fails_cleanly(self):
        # 3-node pool: the exhausted retries shrink the pool below the
        # job's size, so it fails with the pool-shrank record instead
        # of crashing the run.
        mgr = JobManager(Cluster(ClusterSpec(num_nodes=4)))
        report = mgr.run([
            (0.0, tb_job("victim", 3, steps=9, task_seconds=0.05,
                         fault_tolerant=True, max_attempts=3,
                         failures=(NodeFailure(time=0.02, node=1),
                                   NodeFailure(time=0.02, node=2)))),
        ])
        assert report.failed == 1
        assert "pool shrank" in mgr.jobs[0].error


class TestElasticPool:
    def test_lifecycle(self):
        pool = ElasticNodePool(
            Cluster(ClusterSpec(num_nodes=8)), initial_online=3
        )
        assert pool.capacity == 3
        assert pool.potential_capacity == 7
        warmed = pool.begin_warmup(2)
        assert len(warmed) == 2
        assert pool.capacity == 3 and pool.warming_count == 2
        pool.complete_warmup(warmed)
        assert pool.capacity == 5 and pool.warming_count == 0
        parked = pool.take_offline(1)
        assert len(parked) == 1
        assert pool.capacity == 4
        assert pool.potential_capacity == 7

    def test_retired_node_never_rejoins(self):
        pool = ElasticNodePool(
            Cluster(ClusterSpec(num_nodes=8)), initial_online=3
        )
        warmed = pool.begin_warmup(2)
        pool.retire(warmed[0])
        pool.complete_warmup(warmed)
        assert warmed[0] not in pool.free_nodes()
        assert warmed[1] in pool.free_nodes()
        assert pool.potential_capacity == 6

    def test_scale_down_never_takes_held_nodes(self):
        pool = ElasticNodePool(
            Cluster(ClusterSpec(num_nodes=8)), initial_online=5
        )
        part = pool.allocate(4, holder="job")
        parked = pool.take_offline(5)
        # Only the single free node was parkable.
        assert len(parked) == 1
        assert pool.held_count == 4
        assert pool.capacity == 4
        pool.release(part)
        assert pool.capacity == 4  # released nodes stay online

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ElasticConfig(rate=0.0)
        with pytest.raises(ValueError):
            ElasticConfig(queue_limit=0)
        with pytest.raises(ValueError):
            ElasticConfig(scale_up_pressure=0.1, scale_down_pressure=0.5)
