"""OMPC Bench: the experiment launcher of §6.1.

"We developed OMPC Bench, a custom python tool responsible for
correctly launching the experiment jobs based on a YAML configuration
file ... compatible with all used runtimes, guaranteeing the same
experimental parameters for all runs.  Besides that, it also provides a
reliable method for extracting average and dispersion statistics from
multiple executions."

This package re-creates that tool on the simulated cluster: a YAML
subset parser (no external dependency), an experiment launcher driving
any registered Task Bench runtime, summary statistics, and plain-text
table/series reports.
"""

from repro.bench.config import ExperimentConfig, parse_yaml
from repro.bench.gantt import render_gantt, utilization
from repro.bench.launcher import CellFailure, Launcher, Record
from repro.bench.report import format_series, format_table
from repro.bench.stats import Summary, summarize

__all__ = [
    "ExperimentConfig",
    "CellFailure",
    "Launcher",
    "Record",
    "Summary",
    "format_series",
    "format_table",
    "parse_yaml",
    "render_gantt",
    "summarize",
    "utilization",
]
