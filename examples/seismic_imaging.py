"""Distributed seismic imaging with Awave (the paper's §6.2 workload).

Builds a Sigsbee-like velocity model (sediment gradient with an
embedded high-velocity salt body), distributes one RTM shot per worker
node through the OMPC programming model, stacks the per-shot images on
the head node, and renders the result as ASCII art.

Every number here is real: the shots forward-model synthetic data in
the true model, migrate in the smoothed model, and cross-correlate
wavefields — the cluster simulation only decides *where and when* the
work runs.

Run:  python examples/seismic_imaging.py
"""

import numpy as np

from repro.apps.awave import RtmConfig, run_awave, sigsbee_like


def ascii_render(field: np.ndarray, rows: int = 24, cols: int = 72) -> str:
    """Downsample a 2-D field to terminal-sized ASCII shading."""
    ramp = " .:-=+*#%@"
    nz, nx = field.shape
    out = []
    mag = np.abs(field)
    # Normalize robustly (99th percentile) so a few spikes don't wash
    # out the section.
    scale = np.percentile(mag, 99) or 1.0
    for r in range(rows):
        z = slice(r * nz // rows, max((r + 1) * nz // rows, r * nz // rows + 1))
        line = []
        for c in range(cols):
            x = slice(c * nx // cols, max((c + 1) * nx // cols, c * nx // cols + 1))
            v = min(mag[z, x].mean() / scale, 1.0)
            line.append(ramp[int(v * (len(ramp) - 1))])
        out.append("".join(line))
    return "\n".join(out)


def main() -> None:
    model = sigsbee_like(nx=144, nz=72)
    print("velocity model (Sigsbee-like — note the salt body):")
    print(ascii_render(model.vp - model.vp.min()))

    workers = 4
    result = run_awave(
        model,
        num_workers=workers,
        config=RtmConfig(nt=400, snapshot_every=4),
    )
    print(f"\nmigrated {result.num_shots} shots on {workers} worker nodes")
    print(f"simulated cluster makespan: {result.makespan:.2f} s "
          f"(per-shot compute charged at production scale)")
    counters = result.run.counters
    print(f"model distributed via {counters.get('ompc.events.submit', 0):.0f} submits + "
          f"{counters.get('ompc.events.exchange_dst', 0):.0f} worker-to-worker forwards")

    print("\nstacked RTM image (reflectors at velocity contrasts):")
    # Mute the shallow source/receiver imprint for display.
    image = result.image.copy()
    image[:10, :] = 0
    print(ascii_render(image))


if __name__ == "__main__":
    main()
