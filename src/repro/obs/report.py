"""Utilization summary computed from one run's observer.

Answers the Fig. 7a-style questions directly: which link saturated
(per-link busy fraction and bandwidth occupancy), which node's cores
sat idle (per-node core occupancy), how hard the §7 head-node thread
limit was pressed (in-flight slot usage), and how deep the event queues
ran.  Rendered as an aligned text table by :func:`format_utilization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer


@dataclass(frozen=True)
class LinkUsage:
    """One directed link's traffic over the run."""

    src: int
    dst: int
    nbytes: float
    #: Fraction of the run during which ≥1 flow was serializing.
    busy_fraction: float
    #: Bytes moved relative to what the line rate could carry all run.
    occupancy: float


@dataclass(frozen=True)
class NodeUsage:
    """One node's compute-context utilization."""

    node: int
    cores: int
    #: Time-averaged number of busy execution contexts.
    avg_busy: float
    #: ``avg_busy / cores`` (SMT can push this past 1.0).
    occupancy: float


@dataclass
class UtilizationReport:
    makespan: float
    links: list[LinkUsage] = field(default_factory=list)
    nodes: list[NodeUsage] = field(default_factory=list)
    #: (node, time-averaged depth, max depth) of each event queue.
    queues: list[tuple[int, float, float]] = field(default_factory=list)
    head_inflight_avg: float = 0.0
    head_inflight_max: float = 0.0
    head_threads: int | None = None
    #: (node, peak resident bytes) from the device-memory gauges.
    mem_peaks: list[tuple[int, float]] = field(default_factory=list)
    #: Multi-tenant queue-depth profile (``jobs.queue_depth`` gauge).
    jobs_queue_avg: float = 0.0
    jobs_queue_max: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)


def utilization_summary(
    observer: "Observer",
    cluster,
    makespan: float,
    head_threads: int | None = None,
) -> UtilizationReport:
    """Aggregate an observer's metrics into a :class:`UtilizationReport`.

    ``cluster`` supplies static capacities (core counts, line rate); it
    is the :class:`~repro.cluster.machine.Cluster` of the traced run.
    """
    registry = observer.metrics
    report = UtilizationReport(makespan=makespan, head_threads=head_threads)
    span = makespan if makespan > 0 else max(
        (s.end for s in observer.spans), default=0.0
    )
    bandwidth = cluster.network.spec.bandwidth

    for name in sorted(registry.gauges):
        gauge = registry.gauges[name]
        if name.startswith("link."):
            src_text, _, dst_text = name[len("link."):].partition("->")
            counter = registry.counters.get(f"{name}.bytes")
            nbytes = counter.value if counter is not None else 0.0
            report.links.append(
                LinkUsage(
                    src=int(src_text),
                    dst=int(dst_text),
                    nbytes=nbytes,
                    busy_fraction=gauge.busy_fraction(0.0, span),
                    occupancy=(
                        nbytes / (span * bandwidth) if span > 0 else 0.0
                    ),
                )
            )
        elif name.endswith(".cpu_busy"):
            cores = cluster.node(gauge.node).spec.cores
            avg = gauge.time_average(0.0, span)
            report.nodes.append(
                NodeUsage(gauge.node, cores, avg, avg / cores)
            )
        elif name.endswith(".evq"):
            report.queues.append(
                (gauge.node, gauge.time_average(0.0, span), gauge.maximum())
            )
        elif name.endswith(".mem.resident_bytes"):
            report.mem_peaks.append((gauge.node, gauge.maximum()))
        elif name == "jobs.queue_depth":
            report.jobs_queue_avg = gauge.time_average(0.0, span)
            report.jobs_queue_max = gauge.maximum()
        elif name == "head.inflight":
            report.head_inflight_avg = gauge.time_average(0.0, span)
            report.head_inflight_max = gauge.maximum()

    report.counters = {
        name: counter.value
        for name, counter in sorted(registry.counters.items())
        if not name.startswith("link.")
    }
    return report


def _fmt_bytes(nbytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(nbytes) < 1024.0 or unit == "GiB":
            return f"{nbytes:.1f} {unit}" if unit != "B" else f"{nbytes:.0f} B"
        nbytes /= 1024.0
    raise AssertionError("unreachable")


def format_utilization(report: UtilizationReport) -> str:
    """Render the report as the aligned table the trace CLI prints."""
    lines = [f"== utilization (makespan {report.makespan * 1e3:.3f} ms) =="]

    if report.links:
        lines.append("")
        lines.append(f"{'link':<10}{'bytes':>12}{'busy %':>9}{'occupancy %':>13}")
        for link in report.links:
            lines.append(
                f"{f'{link.src}->{link.dst}':<10}"
                f"{_fmt_bytes(link.nbytes):>12}"
                f"{link.busy_fraction * 100:>9.1f}"
                f"{link.occupancy * 100:>13.2f}"
            )

    if report.nodes:
        lines.append("")
        lines.append(f"{'node':<10}{'cores':>6}{'avg busy':>10}{'occupancy %':>13}")
        for node in report.nodes:
            lines.append(
                f"{f'node{node.node}':<10}{node.cores:>6}"
                f"{node.avg_busy:>10.2f}{node.occupancy * 100:>13.2f}"
            )

    slots = f" of {report.head_threads}" if report.head_threads else ""
    lines.append("")
    lines.append(
        f"head in-flight slots: avg {report.head_inflight_avg:.2f}, "
        f"max {report.head_inflight_max:.0f}{slots}"
    )
    for node, avg, peak in report.queues:
        lines.append(
            f"event queue node{node}: avg depth {avg:.2f}, max {peak:.0f}"
        )

    if report.mem_peaks:
        lines.append("")
        lines.append(f"{'node':<10}{'peak device memory':>20}")
        for node, peak in report.mem_peaks:
            lines.append(f"{f'node{node}':<10}{_fmt_bytes(peak):>20}")

    jobs = {
        name[len("jobs."):]: value
        for name, value in report.counters.items()
        if name.startswith("jobs.")
    }
    if jobs:
        lines.append("")
        lines.append(
            "jobs: "
            f"{jobs.get('submitted', 0):.0f} submitted, "
            f"{jobs.get('completed', 0):.0f} completed, "
            f"{jobs.get('failed', 0):.0f} failed, "
            f"{jobs.get('requeued', 0):.0f} requeued, "
            f"{jobs.get('backfilled', 0):.0f} backfilled; "
            f"queue depth avg {report.jobs_queue_avg:.2f}, "
            f"max {report.jobs_queue_max:.0f}"
        )

    mem = {
        name[len("mem."):]: value
        for name, value in report.counters.items()
        if name.startswith("mem.")
    }
    if mem:
        hits = mem.get("hit", 0)
        misses = mem.get("miss", 0)
        total = hits + misses
        rate = f", hit rate {hits / total * 100:.1f}%" if total else ""
        lines.append("")
        lines.append(
            "memory tiering: "
            f"{hits:.0f} device hits, {misses:.0f} misses{rate}; "
            f"{mem.get('evict', 0):.0f} evictions "
            f"({_fmt_bytes(mem.get('spill_bytes', 0))} spilled to host), "
            f"{mem.get('fetch_retries', 0):.0f} fetch retries"
        )

    hb = {
        name[len("hb."):]: value
        for name, value in report.counters.items()
        if name.startswith("hb.")
    }
    if hb:
        lines.append("")
        lines.append(
            "heartbeat health: "
            f"{hb.get('missed_windows', 0):.0f} missed windows, "
            f"{hb.get('suspect_reports', 0):.0f} suspicions "
            f"({hb.get('suspicions_cleared', 0):.0f} cleared, "
            f"{hb.get('false_positives', 0):.0f} false positives), "
            f"{hb.get('detections', 0):.0f} confirmed detections"
        )

    if report.counters:
        lines.append("")
        lines.append("counters:")
        for name, value in report.counters.items():
            rendered = f"{value:.0f}" if float(value).is_integer() else f"{value:g}"
            lines.append(f"  {name} = {rendered}")
    return "\n".join(lines)
