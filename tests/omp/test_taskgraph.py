"""Tests for the task graph container."""

import pytest

from repro.omp import Buffer, Task, TaskGraph, TaskKind
from repro.omp.task import depend_inout


def mk(task_id, cost=0.0):
    return Task(task_id=task_id, kind=TaskKind.TARGET, cost=cost)


class TestTaskGraph:
    def test_add_and_lookup(self):
        g = TaskGraph()
        t = mk(0)
        g.add_task(t)
        assert t in g
        assert g.task(0) is t
        assert len(g) == 1

    def test_duplicate_id_rejected(self):
        g = TaskGraph()
        g.add_task(mk(0))
        with pytest.raises(ValueError):
            g.add_task(mk(0))

    def test_edge_requires_both_nodes(self):
        g = TaskGraph()
        a, b = mk(0), mk(1)
        g.add_task(a)
        with pytest.raises(ValueError):
            g.add_edge(a, b)

    def test_self_edge_rejected(self):
        g = TaskGraph()
        a = mk(0)
        g.add_task(a)
        with pytest.raises(ValueError):
            g.add_edge(a, a)

    def test_neighbors(self):
        g = TaskGraph()
        a, b, c = mk(0), mk(1), mk(2)
        for t in (a, b, c):
            g.add_task(t)
        g.add_edge(a, b)
        g.add_edge(a, c)
        assert g.successors(a) == [b, c]
        assert g.predecessors(b) == [a]
        assert g.roots() == [a]
        assert g.in_degree(c) == 1

    def test_cycle_detection(self):
        g = TaskGraph()
        a, b = mk(0), mk(1)
        g.add_task(a)
        g.add_task(b)
        g.add_edge(a, b)
        g.add_edge(b, a)
        with pytest.raises(ValueError, match="cycle"):
            g.validate()

    def test_topological_order_is_deterministic(self):
        g = TaskGraph()
        tasks = [mk(i) for i in range(6)]
        for t in tasks:
            g.add_task(t)
        g.add_edge(tasks[0], tasks[3])
        g.add_edge(tasks[1], tasks[3])
        g.add_edge(tasks[3], tasks[5])
        order = [t.task_id for t in g.topological_order()]
        # Lexicographic: smallest available id first; 3 unlocks after 0,1.
        assert order == [0, 1, 2, 3, 4, 5]

    def test_critical_path_and_total_cost(self):
        g = TaskGraph()
        a, b, c = mk(0, cost=1.0), mk(1, cost=2.0), mk(2, cost=4.0)
        for t in (a, b, c):
            g.add_task(t)
        g.add_edge(a, b)  # path a->b = 3; c alone = 4
        assert g.critical_path_cost() == 4.0
        assert g.total_cost() == 7.0

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.critical_path_cost() == 0.0
        assert g.total_cost() == 0.0
        assert g.roots() == []


class TestGraphFromDeps:
    def test_diamond_from_clauses(self):
        from repro.omp import OmpProgram
        from repro.omp.task import depend_in, depend_out

        prog = OmpProgram()
        a = prog.buffer(8, name="a")
        b = prog.buffer(8, name="b")
        c = prog.buffer(8, name="c")
        src = prog.target(depend=[depend_out(a)], name="src")
        left = prog.target(depend=[depend_in(a), depend_out(b)], name="left")
        right = prog.target(depend=[depend_in(a), depend_out(c)], name="right")
        sink = prog.target(depend=[depend_in(b), depend_in(c)], name="sink")
        g = prog.graph
        assert g.successors(src) == [left, right]
        assert g.predecessors(sink) == [left, right]
        assert g.num_edges == 4
