"""Nonblocking-operation handles, mirroring ``MPI_Request``."""

from __future__ import annotations

from typing import Callable

from repro.sim.core import Event


class Request:
    """Handle for an in-flight nonblocking send or receive.

    ``yield from req.wait()`` blocks the calling process until the
    operation completes and returns its value (the received message's
    payload for receives, ``None`` for sends).  ``test()`` polls without
    blocking.  ``cancel()`` withdraws a not-yet-matched receive (like
    ``MPI_Cancel``): the matching slot is released so a late message
    cannot be consumed by a request nobody is watching anymore.
    """

    #: Optional lifecycle observer (the MPI checker, when analysis is
    #: on): notified on wait/completion/test/cancel.  Class-level None
    #: keeps the untracked fast path attribute-cheap.
    observer = None

    def __init__(
        self,
        event: Event,
        kind: str,
        canceller: Callable[[], bool] | None = None,
    ):
        self._event = event
        self.kind = kind
        self._canceller = canceller
        self.cancelled = False

    @property
    def event(self) -> Event:
        return self._event

    def test(self) -> bool:
        """True once the operation has completed."""
        if self.observer is not None:
            self.observer.on_test(self)
        return self._event.processed

    def cancel(self) -> bool:
        """Withdraw the operation if it has not completed; True on success.

        Only receives support cancellation (cancelling sends is
        deprecated in MPI itself); a completed, already-matched, or
        send request returns False and is left untouched.  After a
        successful cancel the request's event never fires — do not
        ``wait()`` on it.
        """
        if self.cancelled or self._event.triggered or self._canceller is None:
            return False
        self.cancelled = self._canceller()
        if self.cancelled and self.observer is not None:
            self.observer.on_cancel(self)
        return self.cancelled

    def wait(self):
        """Generator: wait for completion and return the result."""
        if self.observer is not None:
            self.observer.on_wait(self)
        value = yield self._event
        if self.observer is not None:
            self.observer.on_complete(self)
        return value

    @staticmethod
    def wait_all(requests: list["Request"]):
        """Generator: wait for every request (like ``MPI_Waitall``)."""
        results = []
        for req in requests:
            value = yield from req.wait()
            results.append(value)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled" if self.cancelled
            else "done" if self.test()
            else "pending"
        )
        return f"<Request {self.kind} {state}>"
