"""The simulation event loop, events, and processes.

Semantics
---------
* A :class:`Simulator` owns virtual time (``sim.now``, in seconds) and a
  binary heap of scheduled events.
* An :class:`Event` is a one-shot handle: it is *triggered* (scheduled
  with a value or an exception) and later *processed* (its callbacks run
  at its scheduled time).
* A :class:`Process` wraps a generator.  The generator ``yield``\\ s
  events; when a yielded event is processed the generator is resumed
  with the event's value (or the exception is thrown into it).  A
  process is itself an event that triggers when the generator returns.

Determinism: events scheduled for the same time are processed in
``(priority, insertion sequence)`` order, so a run is a pure function of
its inputs.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from collections.abc import Generator
from typing import Any, Callable

from repro.sim.errors import DeadlockError, Interrupt, SimulationError

# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()

_INF = float("inf")

#: Priority for normal events.
NORMAL = 1
#: Priority for urgent events (processed before normal ones at equal time).
URGENT = 0

#: Default for :class:`Simulator`'s two-lane fast queue.  The fast path
#: produces a bit-identical event stream (same ``(time, priority, seq)``
#: processing order) — ``REPRO_SIM_FASTPATH=0`` selects the reference
#: single-heap kernel, which the digest property tests compare against.
_FASTPATH_DEFAULT = os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"


def set_fastpath_default(enabled: bool) -> bool:
    """Set the process-wide default for new simulators; returns the old
    value.  Test helper — production code leaves the default alone."""
    global _FASTPATH_DEFAULT
    old = _FASTPATH_DEFAULT
    _FASTPATH_DEFAULT = bool(enabled)
    return old


class Event:
    """A one-shot occurrence processes can wait on.

    An event moves through three states: *pending* (just created),
    *triggered* (value or exception set, queued on the simulator heap),
    and *processed* (callbacks executed).  Waiting on an already
    processed event resumes the waiter immediately (at the current time).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: Callables invoked with this event when it is processed.
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok = True
        self._processed = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event carries a value rather than an exception."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event with ``value`` after ``delay`` sim-seconds."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay`` seconds."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._value = exc
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    # -- kernel hooks ------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called exactly once by the event loop."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:  # type: ignore[union-attr]
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Attach ``cb``; runs immediately if the event was processed."""
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Process(Event):
    """An event that drives a generator of events.

    The wrapped generator advances whenever its currently awaited event
    is processed.  When the generator returns, the process event
    succeeds with the generator's return value; if the generator raises,
    the process fails with that exception (which propagates to waiters
    or, if nobody waits, aborts the simulation).
    """

    __slots__ = ("_gen", "_waiting_on", "_started")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not isinstance(gen, Generator):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(sim, name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # Bootstrap: resume the generator as soon as the loop starts.
        # (``_waiting_on`` tracks the event whose fire may resume us;
        # ``_resume`` ignores fires from any other event, which is what
        # makes ``interrupt`` O(1) — see below.)
        start = Event(sim, "start")
        self._waiting_on: Event | None = start
        self._started = False
        start.add_callback(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        (the event may still fire later — its value is then dropped for
        this waiter).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        # O(1) detach: instead of scanning the target's callback list,
        # just forget it — when the stale event eventually fires,
        # ``_resume`` sees it is no longer ``_waiting_on`` and drops the
        # value.  (With many waiters on one event — failure races — the
        # old ``list.remove`` made preemption storms O(waiters²).)
        # A process that has not started yet must keep its bootstrap
        # resume: the generator has to reach its first yield before the
        # Interrupt can be thrown into it.
        if self._started:
            self._waiting_on = None
        kick = Event(self.sim, f"interrupt:{self.name}")
        kick.add_callback(lambda ev: self._advance(throw=Interrupt(cause)))
        kick.succeed()

    # -- generator driving -------------------------------------------------
    def _resume(self, ev: Event) -> None:
        if ev is not self._waiting_on:
            return  # detached by interrupt (or a stale wake); drop it
        self._waiting_on = None
        # Direct slot reads: ``ev`` is being processed, so it is
        # necessarily triggered — the property guards would only burn
        # time on the hottest path in the kernel.
        if ev._ok:
            self._advance(send=ev._value)
        else:
            self._advance(throw=ev._value)

    def _advance(self, send: Any = None, throw: BaseException | None = None) -> None:
        while True:
            if self._value is not _PENDING:  # interrupted after completion
                return
            self._started = True
            self.sim._active_process = self
            try:
                if throw is not None:
                    nxt = self._gen.throw(throw)
                else:
                    nxt = self._gen.send(send)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                if not self.callbacks:
                    # Nobody is waiting: crash the simulation loudly
                    # instead of silently swallowing the error.
                    self.sim._crash = exc
                self.fail(exc)
                return
            finally:
                self.sim._active_process = None

            if not isinstance(nxt, Event):
                err = SimulationError(
                    f"process {self.name!r} yielded {nxt!r}; processes must yield Events"
                )
                self._gen.close()
                self.fail(err)
                if not self.callbacks:
                    self.sim._crash = err
                return
            if nxt.sim is not self.sim:
                raise SimulationError(
                    "yielded event belongs to a different simulator"
                )
            # Inlined add_callback (one call frame per yield saved).
            callbacks = nxt.callbacks
            if callbacks is None:
                # Already-processed event: resume in place.  Looping here
                # (a trampoline) instead of recursing through _resume
                # keeps the stack flat — a generator yielding N completed
                # events (e.g. shutdown sweeping hundreds of node gates)
                # would otherwise nest ~2N frames and overflow at scale.
                if nxt._ok:
                    send, throw = nxt._value, None
                else:
                    send, throw = None, nxt._value
                continue
            self._waiting_on = nxt
            callbacks.append(self._resume)
            return


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Two queue implementations share one semantic: events are processed
    in ``(time, priority, seq)`` order.  The reference kernel keeps a
    single binary heap.  The fast kernel (default; see
    ``REPRO_SIM_FASTPATH``) adds a FIFO lane for events scheduled *now*
    at NORMAL priority — the overwhelmingly common case — which are
    appended/popped in O(1) instead of O(log n); because ``seq`` is
    globally monotone, the lane is already sorted by ``(time, seq)`` and
    a single tuple comparison merges it exactly against the heap.  Both
    kernels process the bit-identical event sequence (asserted by the
    digest property tests).
    """

    def __init__(self, fastpath: bool | None = None):
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        #: Fast lane: ``(time, seq, event)`` for immediate NORMAL events.
        self._fast: deque[tuple[float, int, Event]] = deque()
        self._fastpath = _FASTPATH_DEFAULT if fastpath is None else bool(fastpath)
        self._seq = 0
        self._active_process: Process | None = None
        self._crash: BaseException | None = None
        self._processes: list[Process] = []
        self._compact_at = 64
        #: Optional test hook: called with ``(time, priority, event)``
        #: for every processed event (the digest tests' tap).
        self._event_tap: Callable[[float, int, Event], None] | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- construction helpers ----------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, gen: Generator, name: str = "") -> Process:
        proc = Process(self, gen, name)
        # Amortized compaction keeps ``_processes`` proportional to the
        # number of *live* processes (deadlock reporting only needs
        # those) instead of retaining every process ever created —
        # multi-job/overload runs used to leak all of them.
        if len(self._processes) >= self._compact_at:
            self._processes = [p for p in self._processes if p.is_alive]
            self._compact_at = max(64, 2 * len(self._processes))
        self._processes.append(proc)
        return proc

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:
            if delay < 0:
                raise ValueError(f"negative delay {delay!r}")
            raise ValueError(f"non-finite delay {delay!r}")
        ev = Event(self, "timeout")
        # Inlined succeed() + _schedule() — this is the kernel's hottest
        # constructor, so skip the already-triggered check and the extra
        # call frames.
        ev._value = value
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0 and self._fastpath:
            self._fast.append((self._now, seq, ev))
        else:
            heapq.heappush(self._heap, (self._now + delay, NORMAL, seq, ev))
        return ev

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay != 0.0 and not 0.0 < delay < _INF:
            # One chained comparison rejects negative, NaN, and ±inf —
            # a NaN delay used to slip past ``delay < 0`` and silently
            # corrupt the heap invariant.
            raise ValueError(f"delay must be finite and >= 0, got {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0 and priority == NORMAL and self._fastpath:
            self._fast.append((self._now, seq, event))
        else:
            heapq.heappush(self._heap, (self._now + delay, priority, seq, event))

    # -- main loop -------------------------------------------------------------
    def _pop_next(self) -> tuple[float, int, Event]:
        """Remove and return the next ``(time, priority, event)``."""
        fast = self._fast
        if fast:
            when, seq, event = fast[0]
            if self._heap and self._heap[0] < (when, NORMAL, seq):
                when, prio, _seq, event = heapq.heappop(self._heap)
                return when, prio, event
            fast.popleft()
            return when, NORMAL, event
        when, prio, _seq, event = heapq.heappop(self._heap)
        return when, prio, event

    def step(self) -> None:
        """Process the single next event."""
        when, _prio, event = self._pop_next()
        self._now = when
        event._process()
        if self._crash is not None:
            crash, self._crash = self._crash, None
            raise crash

    def run(
        self,
        until: "float | Event | None" = None,
        check_deadlock: bool = False,
    ) -> Any:
        """Run until the heap drains, time ``until`` passes, or event fires.

        Returns the event's value when ``until`` is an event, else the
        final simulation time.
        """
        stop_at: float | None = None
        stop_ev: Event | None = None
        if isinstance(until, Event):
            stop_ev = until
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError("until is in the past")

        heap = self._heap
        fast = self._fast
        heappop = heapq.heappop
        while fast or heap:
            if stop_ev is not None and stop_ev._processed:
                break
            # Peek the earliest entry across both lanes (the fast lane
            # holds NORMAL-priority events and is sorted by (time, seq)).
            take_fast = False
            if fast:
                when, fseq, event = fast[0]
                if heap and heap[0] < (when, NORMAL, fseq):
                    when = heap[0][0]
                    prio = heap[0][1]
                else:
                    take_fast = True
                    prio = NORMAL
            else:
                when = heap[0][0]
                prio = heap[0][1]
            if stop_at is not None and when > stop_at:
                self._now = stop_at
                return self._now
            if take_fast:
                fast.popleft()
            else:
                event = heappop(heap)[3]
            self._now = when
            if self._event_tap is not None:
                self._event_tap(when, prio, event)
            # Inlined Event._process() — one call frame per event saved.
            event._processed = True
            callbacks = event.callbacks
            event.callbacks = None
            for cb in callbacks:  # type: ignore[union-attr]
                cb(event)
            if self._crash is not None:
                crash, self._crash = self._crash, None
                raise crash

        if stop_ev is not None:
            if not stop_ev.triggered:
                # Heap drained but the awaited event never fired: nothing
                # can ever trigger it now, so this is always a deadlock.
                raise DeadlockError(self._live_process_names())
            if not stop_ev.ok:
                raise stop_ev.value
            return stop_ev.value

        if check_deadlock:
            live = self._live_process_names()
            if live:
                raise DeadlockError(live)
        if stop_at is not None and self._now < stop_at:
            # The heap drained before the horizon: idle time still
            # passes, so the clock advances to exactly ``until``.
            self._now = stop_at
        return self._now

    def _live_process_names(self) -> list[str]:
        return [p.name for p in self._processes if p.is_alive]
