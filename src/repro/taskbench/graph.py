"""The Task Bench problem specification: grid, pattern, kernel, CCR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.taskbench.kernel import KernelSpec
from repro.taskbench.patterns import Pattern, average_in_degree, dependencies


@dataclass(frozen=True)
class TaskBenchSpec:
    """One Task Bench configuration.

    ``output_bytes`` is the size of the buffer each task publishes to
    its dependents — the quantity Task Bench (and OMPC Bench) varies to
    hit a target CCR.  Use :meth:`with_ccr` to derive it from a desired
    Computation-to-Communication Ratio.
    """

    width: int
    steps: int
    pattern: Pattern
    kernel: KernelSpec
    output_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.output_bytes < 0:
            raise ValueError("output_bytes must be >= 0")
        # Fail fast on invalid pattern/width combinations.
        dependencies(self.pattern, self.width, 0, 0)

    @classmethod
    def with_ccr(
        cls,
        width: int,
        steps: int,
        pattern: Pattern,
        kernel: KernelSpec,
        ccr: float,
        bandwidth: float,
    ) -> "TaskBenchSpec":
        """Derive ``output_bytes`` from a target CCR.

        CCR is the ratio of per-task computation cost to per-task
        communication cost (§6.2 footnote).  With mean in-degree ``d``
        and per-dependence payload ``B``, a task receives ``d × B``
        bytes, costing ``d × B / bandwidth`` seconds, so::

            B = duration / (ccr × d) × bandwidth

        Patterns without dependences get ``output_bytes = 0``.
        """
        if ccr <= 0:
            raise ValueError("ccr must be > 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        d = average_in_degree(pattern, width, steps)
        nbytes = 0.0 if d == 0 else kernel.duration / (ccr * d) * bandwidth
        return cls(width, steps, pattern, kernel, nbytes)

    # -- inspection ----------------------------------------------------------
    @property
    def total_tasks(self) -> int:
        return self.width * self.steps

    @property
    def total_edges(self) -> int:
        return sum(
            len(self.deps(step, point))
            for step in range(self.steps)
            for point in range(self.width)
        )

    def deps(self, step: int, point: int) -> tuple[int, ...]:
        """Producer points at ``step - 1`` for the task at (step, point)."""
        return dependencies(self.pattern, self.width, step, point)

    def tasks(self) -> Iterator[tuple[int, int]]:
        """All (step, point) pairs in timestep-major order."""
        for step in range(self.steps):
            for point in range(self.width):
                yield step, point

    def describe(self) -> str:
        return (
            f"{self.pattern.value} {self.width}x{self.steps}, "
            f"{self.kernel.iterations} iters/task "
            f"({self.kernel.duration * 1e3:.1f}ms), "
            f"{self.output_bytes / 1e6:.1f}MB/dep"
        )
